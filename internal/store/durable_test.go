package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"alex/internal/obs"
	"alex/internal/rdf"
)

func TestDurableCloseAndReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Store().Add(tri(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("v%d", i)))
	}
	want := snapshotBytes(t, d.Store())
	wantGen := d.Store().Generation()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	r, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Kill()
	rec := r.RecoveryStats()
	if !rec.SnapshotLoaded || rec.WALRecords != 0 {
		t.Errorf("clean shutdown should recover snapshot-only, got %+v", rec)
	}
	if got := snapshotBytes(t, r.Store()); !bytes.Equal(got, want) {
		t.Error("reopened store differs")
	}
	if got := r.Store().Generation(); got != wantGen {
		t.Errorf("generation %d, want %d", got, wantGen)
	}
}

func TestDurableReplayMixedMutations(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ref := New("ds", rdf.NewDict())
	both := func(f func(s *Store)) { f(d.Store()); f(ref) }
	both(func(s *Store) { s.Add(tri("a", "p", "1")) })
	both(func(s *Store) { s.Add(tri("a", "p", "1")) }) // duplicate: no record
	both(func(s *Store) {
		ids := make([]rdf.TripleID, 0, 8)
		for j := 0; j < 8; j++ {
			tr := triIRI(fmt.Sprintf("b%d", j%3), "link", "t")
			ids = append(ids, rdf.TripleID{
				S: s.Dict().Intern(tr.S), P: s.Dict().Intern(tr.P), O: s.Dict().Intern(tr.O),
			})
		}
		s.AddIDs(ids) // in-batch duplicates exercised too
	})
	both(func(s *Store) { s.Retract(tri("a", "p", "1")) })
	both(func(s *Store) { s.Retract(tri("no", "such", "triple")) }) // no-op: no record
	both(func(s *Store) { s.AddIDs(nil) })                          // empty batch: no record, no bump
	d.Kill()

	r, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Kill()
	if got, want := snapshotBytes(t, r.Store()), snapshotBytes(t, ref); !bytes.Equal(got, want) {
		t.Error("recovered store differs from reference")
	}
	if got, want := r.Store().Generation(), ref.Generation(); got != want {
		t.Errorf("generation %d, want %d", got, want)
	}
}

func TestDurableRotation(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir, RotateBytes: 512, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "ds.wal")
	rotated := false
	for i := 0; i < 200 && !rotated; i++ {
		d.Store().Add(tri(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("v%d", i)))
		rotated, err = d.MaybeRotate()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rotated {
		t.Fatal("log never reached the rotation threshold")
	}
	if got := fileSize(t, walPath); got != int64(walHeaderSize) {
		t.Errorf("rotated log is %d bytes, want bare header (%d)", got, walHeaderSize)
	}
	if got := reg.Counter(obs.StoreWALRotations).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.StoreWALRotations, got)
	}
	if reg.Counter(obs.StoreWALAppends).Value() == 0 {
		t.Errorf("%s never incremented", obs.StoreWALAppends)
	}
	want := snapshotBytes(t, d.Store())
	d.Kill()

	r, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Kill()
	if got := snapshotBytes(t, r.Store()); !bytes.Equal(got, want) {
		t.Error("post-rotation recovery differs")
	}
}

func TestDurableStaleWALDiscarded(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d.Store().Add(tri("a", "p", "1"))
	walPath := filepath.Join(dir, "ds.wal")
	oldWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, d.Store())
	d.Kill()
	// Simulate a crash between the checkpoint's snapshot rename and its
	// log reset: the old (already-folded-in) log sits next to the new
	// snapshot. Recovery must discard it, not double-apply.
	if err := os.WriteFile(walPath, oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Kill()
	rec := r.RecoveryStats()
	if !rec.WALDiscarded || rec.WALRecords != 0 {
		t.Errorf("stale log should be discarded, got %+v", rec)
	}
	if got := snapshotBytes(t, r.Store()); !bytes.Equal(got, want) {
		t.Error("stale-log recovery differs from checkpoint image")
	}
}

func TestDurableFutureWALRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // snapshot at epoch 1
		t.Fatal(err)
	}
	d.Kill()
	// A log claiming an epoch the snapshot never reached is corruption,
	// not something recovery can silently reconcile.
	if err := os.WriteFile(filepath.Join(dir, "ds.wal"), walHeader(99), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir}); err == nil {
		t.Fatal("future-epoch log accepted")
	}
}

func TestAttachDurable(t *testing.T) {
	dir := t.TempDir()
	s := New("ds", rdf.NewDict())
	for i := 0; i < 20; i++ {
		s.Add(tri(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("v%d", i)))
	}
	d, err := AttachDurable(s, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Mutations after attach land in the log.
	s.Add(tri("post", "p", "attach"))
	s.Retract(tri("s3", "p", "v3"))
	want := snapshotBytes(t, s)
	wantGen := s.Generation()
	d.Kill()

	r, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Kill()
	rec := r.RecoveryStats()
	if !rec.SnapshotLoaded || rec.WALRecords != 2 {
		t.Errorf("want snapshot + 2 replayed records, got %+v", rec)
	}
	if got := snapshotBytes(t, r.Store()); !bytes.Equal(got, want) {
		t.Error("recovered store differs")
	}
	if got := r.Store().Generation(); got != wantGen {
		t.Errorf("generation %d, want %d", got, wantGen)
	}
}

func TestOpenDurableValidation(t *testing.T) {
	if _, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{}); err == nil {
		t.Error("OpenDurable accepted an empty Dir")
	}
	if _, err := AttachDurable(New("ds", rdf.NewDict()), DurableOptions{}); err == nil {
		t.Error("AttachDurable accepted an empty Dir")
	}
	// A name mismatch between the snapshot on disk and the requested
	// store is an error, not a silent rename.
	dir := t.TempDir()
	d, err := OpenDurable("one", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d.Store().Add(tri("a", "p", "1"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "one.snap"), filepath.Join(dir, "two.snap")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable("two", rdf.NewDict(), DurableOptions{Dir: dir}); err == nil {
		t.Error("snapshot name mismatch accepted")
	}
}

func TestDurableCheckpointConcurrentWithReaders(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	s := d.Store()
	for i := 0; i < 500; i++ {
		s.Add(tri(fmt.Sprintf("s%d", i), "p", "v"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = s.Len()
			_ = s.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm)
		}
	}()
	for i := 0; i < 5; i++ {
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
