package store

import (
	"testing"

	"alex/internal/obs"
	"alex/internal/rdf"
)

func TestStoreObserver(t *testing.T) {
	dict := rdf.NewDict()
	s := New("ds", dict)
	s.Add(rdf.Triple{S: rdf.NewIRI("http://x/a"), P: rdf.NewIRI("http://x/p"), O: rdf.NewString("1")})
	s.Add(rdf.Triple{S: rdf.NewIRI("http://x/b"), P: rdf.NewIRI("http://x/p"), O: rdf.NewString("2")})

	reg := obs.NewRegistry()
	s.SetObserver(reg)

	a, _ := dict.Lookup(rdf.NewIRI("http://x/a"))
	p, _ := dict.Lookup(rdf.NewIRI("http://x/p"))
	s.Match(a, rdf.NoTerm, rdf.NoTerm)          // subject index
	s.Match(rdf.NoTerm, p, rdf.NoTerm)          // predicate index
	s.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm) // full scan

	snap := reg.Snapshot()
	if got := snap.Counters["store.ds.probe.subject"]; got != 1 {
		t.Errorf("probe.subject = %d, want 1", got)
	}
	if got := snap.Counters["store.ds.probe.predicate"]; got != 1 {
		t.Errorf("probe.predicate = %d, want 1", got)
	}
	if got := snap.Counters["store.ds.probe.scan"]; got != 1 {
		t.Errorf("probe.scan = %d, want 1", got)
	}
	// 1 (subject) + 2 (predicate) + 2 (scan) matched triples.
	if got := snap.Counters["store.ds.rows"]; got != 5 {
		t.Errorf("rows = %d, want 5", got)
	}
	if got := snap.Gauges["store.ds.triples"]; got != 2 {
		t.Errorf("triples gauge = %d, want 2", got)
	}
	// The gauge tracks later inserts.
	s.Add(rdf.Triple{S: rdf.NewIRI("http://x/c"), P: rdf.NewIRI("http://x/p"), O: rdf.NewString("3")})
	if got := reg.Gauge("store.ds.triples").Value(); got != 3 {
		t.Errorf("triples gauge after insert = %d, want 3", got)
	}
}
