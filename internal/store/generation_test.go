package store

import (
	"strings"
	"testing"

	"alex/internal/rdf"
)

// TestGenerationBumps is the invalidation contract of Generation: every
// mutation path that changes the store bumps the counter exactly once per
// call, and calls that change nothing (duplicate adds, absent retracts,
// all-duplicate batches) leave it untouched — so a cached result tagged
// with a generation stays valid exactly as long as the data it was
// computed from.
func TestGenerationBumps(t *testing.T) {
	intern := func(s *Store, t_ rdf.Triple) rdf.TripleID {
		return rdf.TripleID{
			S: s.Dict().Intern(t_.S),
			P: s.Dict().Intern(t_.P),
			O: s.Dict().Intern(t_.O),
		}
	}
	cases := []struct {
		name string
		prep func(s *Store)      // bring the store to the pre-state
		op   func(s *Store) bool // the mutation under test; reports "changed"
		bump uint64              // expected generation delta
	}{
		{
			name: "Add new triple",
			op:   func(s *Store) bool { return s.Add(tri("a", "p", "1")) },
			bump: 1,
		},
		{
			name: "Add duplicate",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")) },
			op:   func(s *Store) bool { return s.Add(tri("a", "p", "1")) },
			bump: 0,
		},
		{
			name: "AddID new triple",
			op:   func(s *Store) bool { return s.AddID(intern(s, tri("a", "p", "1"))) },
			bump: 1,
		},
		{
			name: "AddID duplicate",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")) },
			op:   func(s *Store) bool { return s.AddID(intern(s, tri("a", "p", "1"))) },
			bump: 0,
		},
		{
			name: "AddIDs batch with additions",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")) },
			op: func(s *Store) bool {
				batch := []rdf.TripleID{
					intern(s, tri("a", "p", "1")), // dup
					intern(s, tri("b", "p", "2")),
					intern(s, tri("c", "p", "3")),
				}
				return s.AddIDs(batch) > 0
			},
			bump: 1, // one bump per batch, not per triple
		},
		{
			name: "AddIDs all duplicates",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")); s.Add(tri("b", "p", "2")) },
			op: func(s *Store) bool {
				batch := []rdf.TripleID{intern(s, tri("a", "p", "1")), intern(s, tri("b", "p", "2"))}
				return s.AddIDs(batch) > 0
			},
			bump: 0,
		},
		{
			name: "AddIDs empty batch",
			op:   func(s *Store) bool { return s.AddIDs(nil) > 0 },
			bump: 0,
		},
		{
			name: "Retract present triple",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")) },
			op:   func(s *Store) bool { return s.Retract(tri("a", "p", "1")) },
			bump: 1,
		},
		{
			name: "Retract absent triple",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")) },
			op:   func(s *Store) bool { return s.Retract(tri("a", "p", "2")) },
			bump: 0,
		},
		{
			name: "Retract with unknown terms",
			op:   func(s *Store) bool { return s.Retract(tri("never", "seen", "x")) },
			bump: 0,
		},
		{
			name: "RetractID present",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")) },
			op:   func(s *Store) bool { return s.RetractID(intern(s, tri("a", "p", "1"))) },
			bump: 1,
		},
		{
			name: "RetractID already retracted",
			prep: func(s *Store) { s.Add(tri("a", "p", "1")); s.Retract(tri("a", "p", "1")) },
			op:   func(s *Store) bool { return s.RetractID(intern(s, tri("a", "p", "1"))) },
			bump: 0,
		},
		{
			name: "Load bulk",
			op: func(s *Store) bool {
				s.Load([]rdf.Triple{tri("a", "p", "1"), tri("b", "p", "2")})
				return true
			},
			bump: 1, // Load is one AddIDs batch: one bump
		},
		{
			name: "LoadNTriples stream",
			op: func(s *Store) bool {
				nt := `<http://x/a> <http://x/p> "1" .` + "\n"
				n, err := LoadNTriples(s, strings.NewReader(nt), LoadOptions{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				return n > 0
			},
			bump: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New("gen", rdf.NewDict())
			if tc.prep != nil {
				tc.prep(s)
			}
			before := s.Generation()
			changed := tc.op(s)
			got := s.Generation() - before
			if got != tc.bump {
				t.Errorf("generation bumped by %d, want %d", got, tc.bump)
			}
			if changed != (tc.bump > 0) {
				t.Errorf("changed=%t inconsistent with expected bump %d", changed, tc.bump)
			}
			// A second identical call must be a no-op for the idempotent
			// mutations (duplicate-add and absent-retract rows).
			if tc.bump == 0 {
				again := s.Generation()
				tc.op(s)
				if s.Generation() != again {
					t.Error("no-op mutation bumped generation on repeat")
				}
			}
		})
	}
}

// TestRetractRemovesFromReads pins the tombstone semantics: a retracted
// triple disappears from Len, Contains, every indexed Match access path,
// full scans and snapshots, and can be re-added afterwards.
func TestRetractRemovesFromReads(t *testing.T) {
	s := New("retract", rdf.NewDict())
	s.Add(tri("a", "p", "1"))
	s.Add(tri("a", "q", "2"))
	s.Add(tri("b", "p", "3"))
	if !s.Retract(tri("a", "p", "1")) {
		t.Fatal("Retract returned false for a present triple")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d after retract, want 2", s.Len())
	}
	if s.Contains(tri("a", "p", "1")) {
		t.Error("Contains sees the retracted triple")
	}
	id := func(term rdf.Term) rdf.TermID {
		tid, ok := s.Dict().Lookup(term)
		if !ok {
			t.Fatalf("term %v not in dict", term)
		}
		return tid
	}
	if n := len(s.Match(id(rdf.NewIRI("http://x/a")), rdf.NoTerm, rdf.NoTerm)); n != 1 {
		t.Errorf("subject-indexed match = %d rows, want 1", n)
	}
	if n := len(s.Match(rdf.NoTerm, id(rdf.NewIRI("http://x/p")), rdf.NoTerm)); n != 1 {
		t.Errorf("predicate-indexed match = %d rows, want 1", n)
	}
	if n := len(s.Match(rdf.NoTerm, rdf.NoTerm, id(rdf.NewString("1")))); n != 0 {
		t.Errorf("object-indexed match = %d rows, want 0", n)
	}
	if n := len(s.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm)); n != 2 {
		t.Errorf("full scan = %d rows, want 2", n)
	}
	// Re-adding the retracted triple works and is again visible.
	if !s.Add(tri("a", "p", "1")) {
		t.Fatal("re-Add after retract returned false")
	}
	if n := len(s.Match(id(rdf.NewIRI("http://x/a")), rdf.NoTerm, rdf.NoTerm)); n != 2 {
		t.Errorf("subject-indexed match after re-add = %d rows, want 2", n)
	}
}

// TestRetractLastSubjectTriple checks the subject first-sight list: when a
// subject's last triple is retracted the subject leaves Subjects(), and a
// re-add records it exactly once.
func TestRetractLastSubjectTriple(t *testing.T) {
	s := New("subj", rdf.NewDict())
	s.Add(tri("a", "p", "1"))
	s.Add(tri("b", "p", "2"))
	s.Retract(tri("a", "p", "1"))
	if n := len(s.Subjects()); n != 1 {
		t.Fatalf("Subjects = %d after retracting a's only triple, want 1", n)
	}
	s.Add(tri("a", "q", "3"))
	s.Add(tri("a", "r", "4"))
	if n := len(s.Subjects()); n != 2 {
		t.Fatalf("Subjects = %d after re-add, want 2 (no duplicates)", n)
	}
}
