package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"alex/internal/rdf"
)

// fileSize returns the current size of path.
func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestWALTornTailEveryOffset truncates the log at every byte offset —
// covering every position inside the final (and every other) record —
// and requires recovery to succeed cleanly, yielding exactly the store
// of the records that fit entirely before the cut.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "ds.wal")

	// bounds[k] is the log size after k adds; refs[k] the reference
	// snapshot of the first k adds.
	const adds = 12
	bounds := []int64{fileSize(t, walPath)}
	ref := New("ds", rdf.NewDict())
	refs := [][]byte{snapshotBytes(t, ref)}
	for i := 0; i < adds; i++ {
		tr := tri(fmt.Sprintf("s%d", i%5), "p", fmt.Sprintf("v%d", i))
		if !d.Store().Add(tr) {
			t.Fatalf("add %d was a duplicate", i)
		}
		ref.Add(tr)
		bounds = append(bounds, fileSize(t, walPath))
		refs = append(refs, snapshotBytes(t, ref))
	}
	d.Kill()
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	cutDir := t.TempDir()
	cutWAL := filepath.Join(cutDir, "ds.wal")
	for cut := 0; cut <= len(walBytes); cut++ {
		if err := os.WriteFile(cutWAL, walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: cutDir, Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= int64(cut) {
			k++
		}
		if got := snapshotBytes(t, d2.Store()); !bytes.Equal(got, refs[k]) {
			t.Fatalf("cut %d: recovered store differs from %d-add reference", cut, k)
		}
		if g, w := d2.Store().Generation(), uint64(k); g != w {
			t.Fatalf("cut %d: generation %d, want %d", cut, g, w)
		}
		rec := d2.RecoveryStats()
		if int64(cut) > bounds[k] && rec.TornBytes != int64(cut)-bounds[k] {
			t.Fatalf("cut %d: torn bytes %d, want %d", cut, rec.TornBytes, int64(cut)-bounds[k])
		}
		d2.Kill()
	}
}

// TestWALReplayAfterSnapshotEqualsFromScratch drives the same mutation
// sequence through a store that checkpoints halfway and one that never
// does; after a kill, both recoveries must converge to the same bytes and
// generation.
func TestWALReplayAfterSnapshotEqualsFromScratch(t *testing.T) {
	script := func(s *Store, at int, hook func()) {
		for i := 0; i < 30; i++ {
			if i == at {
				hook()
			}
			switch {
			case i%7 == 3:
				s.Retract(tri(fmt.Sprintf("s%d", i-1), "p", fmt.Sprintf("v%d", i-1)))
			case i%5 == 4:
				ids := make([]rdf.TripleID, 0, 6)
				for j := 0; j < 6; j++ {
					tr := triIRI(fmt.Sprintf("b%d", (i+j)%4), "link", fmt.Sprintf("t%d", j%3))
					ids = append(ids, rdf.TripleID{
						S: s.Dict().Intern(tr.S),
						P: s.Dict().Intern(tr.P),
						O: s.Dict().Intern(tr.O),
					})
				}
				s.AddIDs(ids)
			default:
				s.Add(tri(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("v%d", i)))
			}
		}
	}

	dirMid, dirNone := t.TempDir(), t.TempDir()
	dMid, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dirMid})
	if err != nil {
		t.Fatal(err)
	}
	dNone, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dirNone})
	if err != nil {
		t.Fatal(err)
	}
	script(dMid.Store(), 15, func() {
		if err := dMid.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	})
	script(dNone.Store(), -1, nil)
	preBytes := snapshotBytes(t, dMid.Store())
	preGen := dMid.Store().Generation()
	dMid.Kill()
	dNone.Kill()

	rMid, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dirMid})
	if err != nil {
		t.Fatal(err)
	}
	rNone, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dirNone})
	if err != nil {
		t.Fatal(err)
	}
	defer rMid.Kill()
	defer rNone.Kill()
	if !rMid.RecoveryStats().SnapshotLoaded {
		t.Error("mid-checkpoint recovery loaded no snapshot")
	}
	if rNone.RecoveryStats().SnapshotLoaded {
		t.Error("from-scratch recovery loaded a snapshot")
	}
	gMid, gNone := snapshotBytes(t, rMid.Store()), snapshotBytes(t, rNone.Store())
	if !bytes.Equal(gMid, preBytes) {
		t.Error("replay-after-snapshot differs from the pre-crash store")
	}
	if !bytes.Equal(gNone, preBytes) {
		t.Error("replay-from-scratch differs from the pre-crash store")
	}
	if g := rMid.Store().Generation(); g != preGen {
		t.Errorf("replay-after-snapshot generation %d, want %d", g, preGen)
	}
	if g := rNone.Store().Generation(); g != preGen {
		t.Errorf("replay-from-scratch generation %d, want %d", g, preGen)
	}
}

// TestWALGenerationMonotonicAcrossRecovery: the generation counter never
// moves backwards through kill/recover cycles, and each recovery resumes
// at exactly the pre-crash value.
func TestWALGenerationMonotonicAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	last := uint64(0)
	for cycle := 0; cycle < 4; cycle++ {
		for i := 0; i < 5; i++ {
			d.Store().Add(tri(fmt.Sprintf("c%ds%d", cycle, i), "p", "v"))
			if g := d.Store().Generation(); g <= last {
				t.Fatalf("cycle %d: generation %d not above %d", cycle, g, last)
			} else {
				last = g
			}
		}
		if cycle == 1 {
			// A checkpoint must not disturb the counter.
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if g := d.Store().Generation(); g != last {
				t.Fatalf("checkpoint moved generation from %d to %d", last, g)
			}
		}
		pre := d.Store().Generation()
		d.Kill()
		d, err = OpenDurable("ds", rdf.NewDict(), DurableOptions{Dir: dir})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if g := d.Store().Generation(); g != pre {
			t.Fatalf("cycle %d: recovered generation %d, want %d", cycle, g, pre)
		}
	}
	d.Kill()
}

func TestParseFsyncMode(t *testing.T) {
	for in, want := range map[string]FsyncMode{"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "off": FsyncOff} {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Error("ParseFsyncMode accepted an unknown mode")
	}
}
