package store

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/obs"
	"alex/internal/rdf"
)

// Bulk loaders: parallel N-Triples loading and pipelined Turtle loading.
//
// LoadNTriples is the parallel hot path: the input is split on line
// boundaries, chunks are parsed concurrently, terms are interned in a
// deterministic two-phase scheme (each chunk's first-occurrence term list
// is interned serially in chunk order — assigning exactly the ids a serial
// loader would — then every chunk resolves its triples to ids in parallel
// against the now-complete dictionary), and the result is bulk-inserted
// with Store.AddIDs under the striped index locks. A parallel load is
// byte-for-byte equivalent to a serial one: same triple order, same term
// ids, same snapshot.
//
// Both loaders are all-or-nothing: on a parse error nothing is inserted
// and the store is unchanged (the serial Reader's incremental Add loop, by
// contrast, keeps the triples that preceded the error).

// DefaultSerialThreshold is the input size, in bytes, below which
// LoadNTriples parses serially: goroutine and chunk bookkeeping costs more
// than it saves on small fixtures.
const DefaultSerialThreshold = 256 << 10

// LoadOptions configures the bulk loaders.
type LoadOptions struct {
	// Workers bounds the parser/resolver goroutines; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// SerialThreshold is the input size in bytes below which loading is
	// serial; 0 means DefaultSerialThreshold, negative disables the
	// fallback (always parallel — used by tests).
	SerialThreshold int
	// Obs receives the load.parallel.* metrics; nil disables them.
	Obs *obs.Registry
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SerialThreshold == 0 {
		o.SerialThreshold = DefaultSerialThreshold
	}
	return o
}

// LoadNTriples reads the complete N-Triples document from r into s and
// returns the number of triples added (after deduplication). On a parse
// error the store is left unchanged.
func LoadNTriples(s *Store, r io.Reader, opt LoadOptions) (int, error) {
	opt = opt.withDefaults()
	var t0 time.Time
	if opt.Obs != nil {
		t0 = time.Now() //lint:ignore nodeterminism load latency metric only; never feeds store contents
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("store: load %s: %w", s.name, err)
	}
	var (
		added   int
		parsed  int
		chunks  = 1
		workers = opt.Workers
	)
	if workers <= 1 || len(data) < opt.SerialThreshold {
		workers = 1
		added, parsed, err = loadSerial(s, data)
	} else {
		added, parsed, chunks, err = loadParallel(s, data, workers)
	}
	if err != nil {
		return 0, fmt.Errorf("store: load %s: %w", s.name, err)
	}
	if opt.Obs != nil {
		opt.Obs.Counter(obs.LoadParallelTriples).Add(int64(parsed))
		opt.Obs.Counter(obs.LoadParallelChunks).Add(int64(chunks))
		opt.Obs.Gauge(obs.LoadParallelWorkers).Set(int64(workers))
		opt.Obs.Histogram(obs.LoadParallelNS).Observe(time.Since(t0).Nanoseconds()) //lint:ignore nodeterminism load latency metric only; never feeds store contents
	}
	return added, nil
}

// loadSerial is the below-threshold path: one-goroutine parse, intern and
// bulk insert.
func loadSerial(s *Store, data []byte) (added, parsed int, err error) {
	chunks, err := rdf.ParseNTriplesChunks(data, 1)
	if err != nil {
		return 0, 0, err
	}
	var ids []rdf.TripleID
	for _, c := range chunks {
		for _, t := range c.Triples {
			ids = append(ids, rdf.TripleID{
				S: s.dict.Intern(t.S),
				P: s.dict.Intern(t.P),
				O: s.dict.Intern(t.O),
			})
		}
	}
	return s.AddIDs(ids), len(ids), nil
}

// loadParallel fans parsing and id resolution across workers.
func loadParallel(s *Store, data []byte, workers int) (added, parsed, chunks int, err error) {
	parsedChunks, err := rdf.ParseNTriplesChunks(data, workers)
	if err != nil {
		return 0, 0, 0, err
	}
	// Deterministic interning: chunk-ordered first-occurrence lists assign
	// ids exactly as a serial loader would (see rdf.ParsedChunk.NewTerms).
	for _, c := range parsedChunks {
		for _, tm := range c.NewTerms {
			s.dict.Intern(tm)
		}
	}
	// Parallel resolve into pre-assigned slots: chunk i owns
	// ids[offsets[i]:offsets[i+1]], so the concatenation is input order.
	offsets := make([]int, len(parsedChunks)+1)
	for i, c := range parsedChunks {
		offsets[i+1] = offsets[i] + len(c.Triples)
	}
	ids := make([]rdf.TripleID, offsets[len(parsedChunks)])
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := make(map[rdf.Term]rdf.TermID)
			resolve := func(tm rdf.Term) rdf.TermID {
				if id, ok := cache[tm]; ok {
					return id
				}
				id, _ := s.dict.Lookup(tm) // always present after interning
				cache[tm] = id
				return id
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parsedChunks) {
					return
				}
				out := ids[offsets[i]:offsets[i+1]]
				for j, t := range parsedChunks[i].Triples {
					out[j] = rdf.TripleID{S: resolve(t.S), P: resolve(t.P), O: resolve(t.O)}
				}
			}
		}()
	}
	wg.Wait()
	return s.AddIDs(ids), len(ids), len(parsedChunks), nil
}

// turtleBatch is the parser→interner hand-off size of LoadTurtle.
const turtleBatch = 512

// LoadTurtle reads the complete Turtle document from r into s and returns
// the number of triples added. Turtle is stateful (prefixes, predicate
// lists), so it cannot be chunk-parallelized like N-Triples; instead the
// load is pipelined: a parser goroutine streams batches of triples while
// this goroutine interns and accumulates them, and the batch sequence
// preserves document order, so the result is deterministic. On a parse
// error the store is left unchanged.
func LoadTurtle(s *Store, r io.Reader, opt LoadOptions) (int, error) {
	opt = opt.withDefaults()
	var t0 time.Time
	if opt.Obs != nil {
		t0 = time.Now() //lint:ignore nodeterminism load latency metric only; never feeds store contents
	}
	tr, err := rdf.NewTurtleReader(r)
	if err != nil {
		return 0, fmt.Errorf("store: load %s: %w", s.name, err)
	}
	type batch struct {
		triples []rdf.Triple
		err     error
	}
	ch := make(chan batch, 4)
	go func() {
		defer close(ch)
		buf := make([]rdf.Triple, 0, turtleBatch)
		for {
			t, err := tr.Read()
			if err == io.EOF {
				ch <- batch{triples: buf}
				return
			}
			if err != nil {
				ch <- batch{err: err}
				return
			}
			buf = append(buf, t)
			if len(buf) == turtleBatch {
				ch <- batch{triples: buf}
				buf = make([]rdf.Triple, 0, turtleBatch)
			}
		}
	}()
	var ids []rdf.TripleID
	for b := range ch {
		if b.err != nil {
			return 0, fmt.Errorf("store: load %s: %w", s.name, b.err)
		}
		for _, t := range b.triples {
			ids = append(ids, rdf.TripleID{
				S: s.dict.Intern(t.S),
				P: s.dict.Intern(t.P),
				O: s.dict.Intern(t.O),
			})
		}
	}
	added := s.AddIDs(ids)
	if opt.Obs != nil {
		opt.Obs.Counter(obs.LoadParallelTriples).Add(int64(len(ids)))
		opt.Obs.Counter(obs.LoadParallelChunks).Add(1)
		opt.Obs.Gauge(obs.LoadParallelWorkers).Set(2)                               // parser + interner
		opt.Obs.Histogram(obs.LoadParallelNS).Observe(time.Since(t0).Nanoseconds()) //lint:ignore nodeterminism load latency metric only; never feeds store contents
	}
	return added, nil
}
