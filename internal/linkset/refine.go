package linkset

import (
	"sort"

	"alex/internal/rdf"
)

// This file holds link-set refinement utilities used around the core
// pipeline: mutual-best filtering of scored links (the classic 1:1
// stable-matching heuristic automatic linkers apply) and detection of
// functional conflicts (one entity linked to several counterparts), which
// is how an operator audits a candidate set before accepting it.

// MutualBest keeps the scored links where each endpoint is the other's
// highest-scoring partner: the 1:1 filter that turns a many-to-many scored
// alignment into an injective mapping. Ties are broken by (Left, Right) id
// order for determinism. The input is not modified.
func MutualBest(scored []Scored) []Scored {
	bestLeft := map[rdf.TermID]Scored{}  // best partner per left entity
	bestRight := map[rdf.TermID]Scored{} // best partner per right entity
	better := func(a, b Scored) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Link.Left != b.Link.Left {
			return a.Link.Left < b.Link.Left
		}
		return a.Link.Right < b.Link.Right
	}
	// Dedupe the input by link first (keeping the best score), so a link
	// appearing twice cannot appear twice in the output.
	byLink := map[Link]Scored{}
	for _, s := range scored {
		if prev, ok := byLink[s.Link]; !ok || s.Score > prev.Score {
			byLink[s.Link] = s
		}
	}
	for _, s := range byLink {
		if prev, ok := bestLeft[s.Link.Left]; !ok || better(s, prev) {
			bestLeft[s.Link.Left] = s
		}
		if prev, ok := bestRight[s.Link.Right]; !ok || better(s, prev) {
			bestRight[s.Link.Right] = s
		}
	}
	var out []Scored
	for _, s := range byLink {
		if bestLeft[s.Link.Left].Link == s.Link && bestRight[s.Link.Right].Link == s.Link {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.Left != out[j].Link.Left {
			return out[i].Link.Left < out[j].Link.Left
		}
		return out[i].Link.Right < out[j].Link.Right
	})
	return out
}

// Conflict reports one entity linked to multiple counterparts.
type Conflict struct {
	// Entity is the shared endpoint.
	Entity rdf.TermID
	// Side is "left" or "right" — which side of the links Entity is on.
	Side string
	// Partners are the conflicting counterparts, sorted.
	Partners []rdf.TermID
}

// Conflicts returns the functional violations in a link set: every left
// entity with more than one right partner and every right entity with more
// than one left partner. owl:sameAs between two deduplicated data sets
// should be 1:1; conflicts usually mark wrong links worth reviewing first.
func Conflicts(s *Set) []Conflict {
	byLeft := map[rdf.TermID][]rdf.TermID{}
	byRight := map[rdf.TermID][]rdf.TermID{}
	for _, l := range s.Links() {
		byLeft[l.Left] = append(byLeft[l.Left], l.Right)
		byRight[l.Right] = append(byRight[l.Right], l.Left)
	}
	var out []Conflict
	collect := func(m map[rdf.TermID][]rdf.TermID, side string) {
		ids := make([]rdf.TermID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			partners := m[id]
			if len(partners) < 2 {
				continue
			}
			sort.Slice(partners, func(i, j int) bool { return partners[i] < partners[j] })
			out = append(out, Conflict{Entity: id, Side: side, Partners: partners})
		}
	}
	collect(byLeft, "left")
	collect(byRight, "right")
	return out
}
