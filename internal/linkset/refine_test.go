package linkset

import (
	"testing"
	"testing/quick"

	"alex/internal/rdf"
)

func sc(l, r uint32, score float64) Scored {
	return Scored{Link: lk(l, r), Score: score}
}

func TestMutualBestKeepsReciprocalPairs(t *testing.T) {
	scored := []Scored{
		sc(1, 10, 0.9), // mutual best
		sc(1, 11, 0.5), // 1 prefers 10
		sc(2, 11, 0.8), // mutual best
		sc(3, 10, 0.7), // 10 prefers 1
	}
	out := MutualBest(scored)
	if len(out) != 2 {
		t.Fatalf("MutualBest = %v", out)
	}
	if out[0].Link != lk(1, 10) || out[1].Link != lk(2, 11) {
		t.Errorf("MutualBest = %v", out)
	}
}

func TestMutualBestEmptyAndSingle(t *testing.T) {
	if out := MutualBest(nil); len(out) != 0 {
		t.Errorf("nil input = %v", out)
	}
	out := MutualBest([]Scored{sc(1, 1, 0.5)})
	if len(out) != 1 {
		t.Errorf("single input = %v", out)
	}
}

func TestMutualBestTieDeterministic(t *testing.T) {
	// Two right candidates with equal score for the same left entity: the
	// lower-id pair wins both runs.
	scored := []Scored{sc(1, 10, 0.9), sc(1, 11, 0.9)}
	a := MutualBest(scored)
	b := MutualBest([]Scored{scored[1], scored[0]}) // reversed input order
	if len(a) != 1 || len(b) != 1 || a[0].Link != b[0].Link {
		t.Errorf("tie not deterministic: %v vs %v", a, b)
	}
	if a[0].Link != lk(1, 10) {
		t.Errorf("tie winner = %v, want (1,10)", a[0].Link)
	}
}

func TestMutualBestInjectiveProperty(t *testing.T) {
	prop := func(pairs []uint16, scores []uint8) bool {
		if len(pairs) == 0 || len(scores) == 0 {
			return true
		}
		var scored []Scored
		for i, p := range pairs {
			scored = append(scored, Scored{
				Link:  lk(uint32(p%16)+1, uint32(p/16%16)+1),
				Score: float64(scores[i%len(scores)]) / 255,
			})
		}
		out := MutualBest(scored)
		seenL := map[rdf.TermID]bool{}
		seenR := map[rdf.TermID]bool{}
		for _, s := range out {
			if seenL[s.Link.Left] || seenR[s.Link.Right] {
				return false // not injective
			}
			seenL[s.Link.Left] = true
			seenR[s.Link.Right] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConflicts(t *testing.T) {
	s := FromLinks([]Link{
		lk(1, 10), lk(1, 11), // left conflict on 1
		lk(2, 12),
		lk(3, 12), // right conflict on 12 (with 2)
	})
	conflicts := Conflicts(s)
	if len(conflicts) != 2 {
		t.Fatalf("Conflicts = %+v", conflicts)
	}
	left := conflicts[0]
	if left.Side != "left" || left.Entity != 1 || len(left.Partners) != 2 {
		t.Errorf("left conflict = %+v", left)
	}
	right := conflicts[1]
	if right.Side != "right" || right.Entity != 12 || len(right.Partners) != 2 {
		t.Errorf("right conflict = %+v", right)
	}
}

func TestConflictsCleanSet(t *testing.T) {
	s := FromLinks([]Link{lk(1, 10), lk(2, 11), lk(3, 12)})
	if got := Conflicts(s); len(got) != 0 {
		t.Errorf("clean set conflicts = %v", got)
	}
	if got := Conflicts(New()); len(got) != 0 {
		t.Errorf("empty set conflicts = %v", got)
	}
}

func TestMutualBestResolvesAllConflicts(t *testing.T) {
	scored := []Scored{
		sc(1, 10, 0.9), sc(1, 11, 0.8), sc(2, 10, 0.7), sc(2, 11, 0.95),
		sc(3, 12, 0.5), sc(4, 12, 0.6),
	}
	out := MutualBest(scored)
	set := New()
	for _, s := range out {
		set.Add(s.Link)
	}
	if got := Conflicts(set); len(got) != 0 {
		t.Errorf("MutualBest output still has conflicts: %v", got)
	}
}
