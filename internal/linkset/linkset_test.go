package linkset

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"alex/internal/rdf"
)

func lk(a, b uint32) Link { return Link{Left: rdf.TermID(a), Right: rdf.TermID(b)} }

func TestSetAddRemoveContains(t *testing.T) {
	s := New()
	if !s.Add(lk(1, 2)) {
		t.Error("first Add = false")
	}
	if s.Add(lk(1, 2)) {
		t.Error("duplicate Add = true")
	}
	if !s.Contains(lk(1, 2)) {
		t.Error("Contains = false")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Remove(lk(1, 2)) {
		t.Error("Remove present = false")
	}
	if s.Remove(lk(1, 2)) {
		t.Error("Remove absent = true")
	}
	if s.Contains(lk(1, 2)) {
		t.Error("Contains after Remove = true")
	}
}

func TestSetLinksSorted(t *testing.T) {
	s := FromLinks([]Link{lk(3, 1), lk(1, 2), lk(1, 1), lk(2, 9)})
	ls := s.Links()
	want := []Link{lk(1, 1), lk(1, 2), lk(2, 9), lk(3, 1)}
	if len(ls) != len(want) {
		t.Fatalf("Links = %v", ls)
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Errorf("Links[%d] = %v, want %v", i, ls[i], want[i])
		}
	}
}

func TestSetClone(t *testing.T) {
	s := FromLinks([]Link{lk(1, 1), lk(2, 2)})
	c := s.Clone()
	c.Add(lk(3, 3))
	if s.Len() != 2 || c.Len() != 3 {
		t.Errorf("clone not independent: s=%d c=%d", s.Len(), c.Len())
	}
}

func TestSetDiffCount(t *testing.T) {
	a := FromLinks([]Link{lk(1, 1), lk(2, 2), lk(3, 3)})
	b := FromLinks([]Link{lk(2, 2), lk(3, 3), lk(4, 4), lk(5, 5)})
	if got := a.DiffCount(b); got != 3 {
		t.Errorf("DiffCount = %d, want 3", got)
	}
	if got := a.DiffCount(a.Clone()); got != 0 {
		t.Errorf("self DiffCount = %d", got)
	}
}

func TestEvaluate(t *testing.T) {
	truth := FromLinks([]Link{lk(1, 1), lk(2, 2), lk(3, 3), lk(4, 4)})
	cand := FromLinks([]Link{lk(1, 1), lk(2, 2), lk(9, 9)})
	q := Evaluate(cand, truth)
	if q.Correct != 2 || q.Candidates != 3 || q.Truth != 4 {
		t.Errorf("counts = %+v", q)
	}
	if math.Abs(q.Precision-2.0/3) > 1e-9 {
		t.Errorf("P = %g", q.Precision)
	}
	if math.Abs(q.Recall-0.5) > 1e-9 {
		t.Errorf("R = %g", q.Recall)
	}
	wantF := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(q.FMeasure-wantF) > 1e-9 {
		t.Errorf("F = %g, want %g", q.FMeasure, wantF)
	}
	if q.String() == "" {
		t.Error("Quality.String empty")
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	empty := New()
	truth := FromLinks([]Link{lk(1, 1)})
	q := Evaluate(empty, truth)
	if q.Precision != 0 || q.Recall != 0 || q.FMeasure != 0 {
		t.Errorf("empty candidates: %+v", q)
	}
	q = Evaluate(truth, empty)
	if q.Precision != 0 || q.Recall != 0 {
		t.Errorf("empty truth: %+v", q)
	}
	q = Evaluate(truth.Clone(), truth)
	if q.Precision != 1 || q.Recall != 1 || q.FMeasure != 1 {
		t.Errorf("perfect: %+v", q)
	}
}

func TestEvaluateProperties(t *testing.T) {
	prop := func(cs, ts []uint16) bool {
		cand, truth := New(), New()
		for _, c := range cs {
			cand.Add(lk(uint32(c%50)+1, uint32(c%50)+1))
		}
		for _, g := range ts {
			truth.Add(lk(uint32(g%50)+1, uint32(g%50)+1))
		}
		q := Evaluate(cand, truth)
		if q.Precision < 0 || q.Precision > 1 || q.Recall < 0 || q.Recall > 1 {
			return false
		}
		if q.FMeasure < 0 || q.FMeasure > 1 {
			return false
		}
		// F is 0 iff P or R is 0; F never exceeds max(P, R).
		if q.FMeasure > math.Max(q.Precision, q.Recall)+1e-12 {
			return false
		}
		return q.Correct <= q.Candidates && q.Correct <= q.Truth
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetConcurrency(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l := lk(uint32(i), uint32(i))
				s.Add(l)
				s.Contains(l)
				if g%2 == 0 {
					s.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
}

func TestLinkString(t *testing.T) {
	if lk(1, 2).String() == "" {
		t.Error("empty Link.String")
	}
}
