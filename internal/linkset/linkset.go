// Package linkset manages sets of owl:sameAs candidate links between two
// data sets and computes the quality metrics the paper reports: precision,
// recall and F-measure against a ground-truth link set (§7.1).
package linkset

import (
	"fmt"
	"sort"
	"sync"

	"alex/internal/rdf"
)

// Link identifies one owl:sameAs candidate between an entity of the first
// data set (Left) and one of the second (Right). TermIDs refer to a shared
// rdf.Dict.
type Link struct {
	Left  rdf.TermID
	Right rdf.TermID
}

// String renders the link for diagnostics.
func (l Link) String() string { return fmt.Sprintf("(%d ~ %d)", l.Left, l.Right) }

// Scored pairs a link with the confidence its producer assigned.
type Scored struct {
	Link  Link
	Score float64
}

// Set is a mutable set of candidate links. It is safe for concurrent use.
type Set struct {
	mu    sync.RWMutex
	links map[Link]struct{}
}

// New returns an empty set.
func New() *Set {
	return &Set{links: make(map[Link]struct{})}
}

// FromLinks builds a set from a slice.
func FromLinks(links []Link) *Set {
	s := New()
	for _, l := range links {
		s.Add(l)
	}
	return s
}

// Add inserts the link, reporting whether it was absent.
func (s *Set) Add(l Link) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.links[l]; dup {
		return false
	}
	s.links[l] = struct{}{}
	return true
}

// Remove deletes the link, reporting whether it was present.
func (s *Set) Remove(l Link) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.links[l]; !ok {
		return false
	}
	delete(s.links, l)
	return true
}

// Contains reports membership.
func (s *Set) Contains(l Link) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.links[l]
	return ok
}

// Len returns the set size.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.links)
}

// Links returns the links sorted by (Left, Right) for determinism.
func (s *Set) Links() []Link {
	s.mu.RLock()
	out := make([]Link, 0, len(s.links))
	for l := range s.links {
		out = append(out, l)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &Set{links: make(map[Link]struct{}, len(s.links))}
	for l := range s.links {
		c.links[l] = struct{}{}
	}
	return c
}

// DiffCount returns the size of the symmetric difference with other.
// ALEX's convergence test is DiffCount == 0 (strict) or
// DiffCount < 5% of Len (relaxed).
func (s *Set) DiffCount(other *Set) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	diff := 0
	for l := range s.links {
		if _, ok := other.links[l]; !ok {
			diff++
		}
	}
	for l := range other.links {
		if _, ok := s.links[l]; !ok {
			diff++
		}
	}
	return diff
}

// Quality holds the paper's evaluation metrics for one candidate set.
type Quality struct {
	Precision float64
	Recall    float64
	FMeasure  float64
	// Correct is |C ∩ G|, Candidates is |C|, Truth is |G|.
	Correct    int
	Candidates int
	Truth      int
}

// String renders the metrics compactly.
func (q Quality) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f (%d/%d candidates correct, %d truth)",
		q.Precision, q.Recall, q.FMeasure, q.Correct, q.Candidates, q.Truth)
}

// Evaluate computes precision P = |C∩G|/|C|, recall R = |C∩G|/|G| and
// F = 2PR/(P+R) of candidates against truth. Empty candidate sets have
// precision 0 by convention; empty truth has recall 0.
func Evaluate(candidates, truth *Set) Quality {
	candidates.mu.RLock()
	defer candidates.mu.RUnlock()
	truth.mu.RLock()
	defer truth.mu.RUnlock()
	q := Quality{Candidates: len(candidates.links), Truth: len(truth.links)}
	for l := range candidates.links {
		if _, ok := truth.links[l]; ok {
			q.Correct++
		}
	}
	if q.Candidates > 0 {
		q.Precision = float64(q.Correct) / float64(q.Candidates)
	}
	if q.Truth > 0 {
		q.Recall = float64(q.Correct) / float64(q.Truth)
	}
	if q.Precision+q.Recall > 0 {
		q.FMeasure = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}
