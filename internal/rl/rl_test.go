package rl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mustAction consults the policy for a state known to have actions,
// failing the test on the (impossible there) ErrNoActions.
func mustAction[S comparable, A comparable](t *testing.T, p Policy[S, A], s S, actions []A) A {
	t.Helper()
	a, err := p.Action(s, actions)
	if err != nil {
		t.Fatalf("Action(%v, %v): %v", s, actions, err)
	}
	return a
}

func TestQTableAppendAndQ(t *testing.T) {
	q := NewQTable[string, int]()
	if _, ok := q.Q("s", 1); ok {
		t.Error("Q defined before any return")
	}
	q.Append("s", 1, 1)
	q.Append("s", 1, 3)
	v, ok := q.Q("s", 1)
	if !ok || v != 2 {
		t.Errorf("Q = %g, %v; want 2, true", v, ok)
	}
	if q.Visits("s", 1) != 2 {
		t.Errorf("Visits = %d", q.Visits("s", 1))
	}
	if q.Visits("s", 2) != 0 {
		t.Errorf("Visits unseen = %d", q.Visits("s", 2))
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestQTableBest(t *testing.T) {
	q := NewQTable[string, int]()
	if _, ok := q.Best("s", []int{1, 2, 3}); ok {
		t.Error("Best defined with no data")
	}
	q.Append("s", 1, 0.5)
	q.Append("s", 2, 2.0)
	q.Append("s", 3, -1.0)
	best, ok := q.Best("s", []int{1, 2, 3})
	if !ok || best != 2 {
		t.Errorf("Best = %d, %v; want 2", best, ok)
	}
	// Candidates restrict the argmax.
	best, ok = q.Best("s", []int{1, 3})
	if !ok || best != 1 {
		t.Errorf("restricted Best = %d", best)
	}
	// Unknown actions among candidates are skipped, not treated as zero.
	q2 := NewQTable[string, int]()
	q2.Append("s", 1, -5)
	best, ok = q2.Best("s", []int{9, 1})
	if !ok || best != 1 {
		t.Errorf("Best with undefined candidate = %d, %v", best, ok)
	}
}

func TestQTableBestTieBreaksFirst(t *testing.T) {
	q := NewQTable[string, int]()
	q.Append("s", 2, 1)
	q.Append("s", 1, 1)
	best, _ := q.Best("s", []int{1, 2})
	if best != 1 {
		t.Errorf("tie break = %d, want first candidate", best)
	}
}

func TestQTableAverageProperty(t *testing.T) {
	prop := func(rewards []float64) bool {
		if len(rewards) == 0 {
			return true
		}
		q := NewQTable[int, int]()
		sum := 0.0
		n := 0
		for _, r := range rewards {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				continue
			}
			// Bound magnitudes: rewards in ALEX are small integers; huge
			// inputs only test float overflow, not averaging.
			r = math.Mod(r, 1000)
			q.Append(0, 0, r)
			sum += r
			n++
		}
		if n == 0 {
			return true
		}
		v, ok := q.Q(0, 0)
		return ok && math.Abs(v-sum/float64(n)) < 1e-6*math.Max(1, math.Abs(sum))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEpsilonGreedyStableArbitraryAction(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0, rand.New(rand.NewSource(1)))
	a1 := mustAction[string, int](t, p, "s", []int{7, 8, 9})
	for i := 0; i < 10; i++ {
		if a2 := mustAction[string, int](t, p, "s", []int{7, 8, 9}); a2 != a1 {
			t.Fatalf("arbitrary action changed: %d then %d", a1, a2)
		}
	}
}

func TestEpsilonGreedyArbitraryActionUnbiased(t *testing.T) {
	// Across many fresh states, the arbitrary initial action must spread
	// over the whole action set, not collapse onto one index.
	p := NewEpsilonGreedy[int, int](0, rand.New(rand.NewSource(5)))
	counts := map[int]int{}
	for s := 0; s < 300; s++ {
		counts[mustAction[int, int](t, p, s, []int{1, 2, 3})]++
	}
	for a := 1; a <= 3; a++ {
		if counts[a] < 50 {
			t.Errorf("action %d chosen %d/300 times, want roughly uniform", a, counts[a])
		}
	}
}

func TestEpsilonGreedyFollowsImprovedAction(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0, rand.New(rand.NewSource(1)))
	p.Improve("s", 9)
	for i := 0; i < 10; i++ {
		if got := mustAction[string, int](t, p, "s", []int{7, 8, 9}); got != 9 {
			t.Fatalf("greedy action = %d, want 9", got)
		}
	}
	g, ok := p.Greedy("s")
	if !ok || g != 9 {
		t.Errorf("Greedy = %d, %v", g, ok)
	}
}

func TestEpsilonGreedyExplores(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0.5, rand.New(rand.NewSource(42)))
	p.Improve("s", 1)
	counts := map[int]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[mustAction[string, int](t, p, "s", []int{1, 2, 3, 4})]++
	}
	// Expected: P(1) = 1-ε+ε/4 = 0.625, others 0.125 each.
	if f := float64(counts[1]) / n; math.Abs(f-0.625) > 0.05 {
		t.Errorf("greedy frequency = %g, want ~0.625", f)
	}
	for a := 2; a <= 4; a++ {
		if counts[a] == 0 {
			t.Errorf("action %d never explored", a)
		}
		if f := float64(counts[a]) / n; math.Abs(f-0.125) > 0.04 {
			t.Errorf("action %d frequency = %g, want ~0.125", a, f)
		}
	}
}

func TestEpsilonGreedyProb(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0.2, rand.New(rand.NewSource(1)))
	p.Improve("s", 1)
	actions := []int{1, 2, 3, 4}
	if got := p.Prob("s", 1, actions); math.Abs(got-(0.8+0.05)) > 1e-9 {
		t.Errorf("Prob(greedy) = %g", got)
	}
	if got := p.Prob("s", 2, actions); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("Prob(non-greedy) = %g", got)
	}
	// Probabilities sum to 1 over A(s).
	sum := 0.0
	for _, a := range actions {
		sum += p.Prob("s", a, actions)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	if p.Prob("s", 1, nil) != 0 {
		t.Error("Prob with empty action set should be 0")
	}
	// Un-improved state: first candidate acts as greedy.
	if got := p.Prob("t", 5, []int{5, 6}); math.Abs(got-(0.8+0.1)) > 1e-9 {
		t.Errorf("Prob un-improved greedy = %g", got)
	}
}

func TestEpsilonGreedyEveryActionPositiveProb(t *testing.T) {
	// The paper's continuous-exploration invariant: π(s,a) ≥ ε/|A(s)| > 0.
	prop := func(eps float64, nActions uint8) bool {
		if math.IsNaN(eps) {
			return true
		}
		eps = math.Abs(math.Mod(eps, 1))
		if eps == 0 {
			eps = 0.1
		}
		n := int(nActions%8) + 1
		p := NewEpsilonGreedy[int, int](eps, rand.New(rand.NewSource(3)))
		actions := make([]int, n)
		for i := range actions {
			actions[i] = i
		}
		p.Improve(0, 0)
		minProb := eps / float64(n)
		for _, a := range actions {
			if p.Prob(0, a, actions) < minProb-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEpsilonGreedyGreedyGone(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0, rand.New(rand.NewSource(1)))
	p.Improve("s", 99)
	if got := mustAction[string, int](t, p, "s", []int{1, 2}); got != 1 {
		t.Errorf("vanished greedy fallback = %d, want 1", got)
	}
}

func TestEpsilonGreedyErrNoActionsOnEmpty(t *testing.T) {
	// Regression: an empty action set must surface rl.ErrNoActions (this
	// used to panic), without touching the policy's state.
	p := NewEpsilonGreedy[string, int](0.1, rand.New(rand.NewSource(1)))
	a, err := p.Action("s", nil)
	if !errors.Is(err, ErrNoActions) {
		t.Fatalf("Action on empty set: err = %v, want ErrNoActions", err)
	}
	if a != 0 {
		t.Errorf("Action on empty set returned %d, want the zero action", a)
	}
	if _, seen := p.Greedy("s"); seen {
		t.Error("failed Action recorded the state as seen")
	}
}

func TestEpsilonGreedyLen(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0.1, rand.New(rand.NewSource(1)))
	p.Improve("a", 1)
	p.Improve("b", 2)
	p.Improve("a", 3)
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestFirstVisitTracker(t *testing.T) {
	tr := NewFirstVisitTracker[string]()
	if !tr.FirstVisit("a") {
		t.Error("first visit = false")
	}
	if tr.FirstVisit("a") {
		t.Error("second visit = true")
	}
	if !tr.FirstVisit("b") {
		t.Error("different state first visit = false")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	tr.Reset()
	if !tr.FirstVisit("a") {
		t.Error("visit after Reset = false (should be a new first visit)")
	}
}

// Policy-improvement soundness on a toy problem: a 1-state bandit with one
// good and one bad action must converge to the good action within a few
// episodes (the paper's §5 guarantee instantiated).
func TestPolicyIterationConvergesOnBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewQTable[int, int]()
	p := NewEpsilonGreedy[int, int](0.1, rng)
	actions := []int{0, 1} // action 1 pays +1, action 0 pays -1
	for episode := 0; episode < 20; episode++ {
		for step := 0; step < 50; step++ {
			a := mustAction[int, int](t, p, 0, actions)
			reward := -1.0
			if a == 1 {
				reward = 1.0
			}
			q.Append(0, a, reward)
		}
		if best, ok := q.Best(0, actions); ok {
			p.Improve(0, best)
		}
	}
	if g, _ := p.Greedy(0); g != 1 {
		t.Errorf("converged greedy action = %d, want 1", g)
	}
	v1, _ := q.Q(0, 1)
	v0, _ := q.Q(0, 0)
	if v1 <= v0 {
		t.Errorf("Q(1)=%g not above Q(0)=%g", v1, v0)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("SortedKeys = %v", keys)
	}
}

func TestQTableBestOptimistic(t *testing.T) {
	q := NewQTable[string, int]()
	if _, ok := q.BestOptimistic("s", nil, 0); ok {
		t.Error("empty candidates returned ok")
	}
	// Only tried action is bad: the untried one (default 0) must win.
	q.Append("s", 1, -1)
	best, ok := q.BestOptimistic("s", []int{1, 2}, 0)
	if !ok || best != 2 {
		t.Errorf("BestOptimistic = %d, %v; want 2", best, ok)
	}
	// A good tried action beats the default.
	q.Append("s", 3, 0.5)
	best, _ = q.BestOptimistic("s", []int{1, 2, 3}, 0)
	if best != 3 {
		t.Errorf("BestOptimistic = %d, want 3", best)
	}
	// With a pessimistic default, tried-but-mediocre wins over untried.
	best, _ = q.BestOptimistic("s", []int{1, 2}, -5)
	if best != 1 {
		t.Errorf("pessimistic BestOptimistic = %d, want 1", best)
	}
}

func TestQTableEntriesAndLoad(t *testing.T) {
	q := NewQTable[string, int]()
	q.Append("a", 1, 2)
	q.Append("a", 1, 4)
	q.Append("b", 2, -1)
	entries := q.Entries()
	if len(entries) != 2 {
		t.Fatalf("Entries = %v", entries)
	}
	// Round trip into a fresh table.
	q2 := NewQTable[string, int]()
	for _, e := range entries {
		q2.Load(e)
	}
	for _, e := range entries {
		v1, _ := q.Q(e.State, e.Action)
		v2, ok := q2.Q(e.State, e.Action)
		if !ok || v1 != v2 {
			t.Errorf("restored Q(%v,%v) = %g, want %g", e.State, e.Action, v2, v1)
		}
		if q2.Visits(e.State, e.Action) != q.Visits(e.State, e.Action) {
			t.Errorf("restored visits differ for %v", e)
		}
	}
}

func TestEpsilonGreedyGreedyEntries(t *testing.T) {
	p := NewEpsilonGreedy[string, int](0.1, rand.New(rand.NewSource(1)))
	p.Improve("a", 1)
	p.Improve("b", 2)
	m := p.GreedyEntries()
	if len(m) != 2 || m["a"] != 1 || m["b"] != 2 {
		t.Errorf("GreedyEntries = %v", m)
	}
	// The export is a copy.
	m["a"] = 99
	if g, _ := p.Greedy("a"); g != 1 {
		t.Error("GreedyEntries leaked internal map")
	}
}
