package rl

import (
	"math"
	"math/rand"
)

// Policy is the interface the ALEX engine drives: select an action for a
// state, accept policy-improvement updates, and report the remembered
// greedy action (used to detect never-seen states). EpsilonGreedy is the
// paper's policy; Softmax is an alternative stochastic policy for the
// policy-shape ablation.
type Policy[S comparable, A comparable] interface {
	// Action selects the action to take at state s among actions; it
	// returns ErrNoActions when the action set is empty.
	Action(s S, actions []A) (A, error)
	Improve(s S, best A)
	Greedy(s S) (A, bool)
	// GreedyEntries exports every remembered greedy action, for
	// persistence and introspection.
	GreedyEntries() map[S]A
}

var (
	_ Policy[int, int] = (*EpsilonGreedy[int, int])(nil)
	_ Policy[int, int] = (*Softmax[int, int])(nil)
)

// Softmax is a Boltzmann policy: actions are chosen with probability
// proportional to exp(Q(s,a)/Temp). Unlike ε-greedy, exploration pressure
// scales with how close the action values are — clearly bad actions are
// almost never re-tried, while near-ties keep being compared. Untried
// actions count as Q = 0, which sits above punished actions and below
// rewarded ones: built-in optimism for the untried.
type Softmax[S comparable, A comparable] struct {
	// Temp is the temperature τ; higher is more uniform. Zero defaults
	// to 0.5.
	Temp float64
	q    *QTable[S, A]
	rng  *rand.Rand
	// greedy remembers the last improvement per state, so the engine's
	// "never seen this state" probe works identically to ε-greedy.
	greedy map[S]A
}

// NewSoftmax returns a softmax policy reading action values from q.
func NewSoftmax[S comparable, A comparable](temp float64, q *QTable[S, A], rng *rand.Rand) *Softmax[S, A] {
	if temp <= 0 {
		temp = 0.5
	}
	return &Softmax[S, A]{Temp: temp, q: q, rng: rng, greedy: make(map[S]A)}
}

// Action samples an action with Boltzmann probabilities over the current
// action-value estimates. It returns ErrNoActions on an empty action set,
// matching EpsilonGreedy.
func (p *Softmax[S, A]) Action(s S, actions []A) (A, error) {
	if len(actions) == 0 {
		var zero A
		return zero, ErrNoActions
	}
	if _, seen := p.greedy[s]; !seen {
		// Remember an arbitrary action so Greedy reports the state as
		// known, mirroring ε-greedy's bookkeeping.
		p.greedy[s] = actions[p.rng.Intn(len(actions))]
	}
	weights := make([]float64, len(actions))
	maxQ := math.Inf(-1)
	qs := make([]float64, len(actions))
	for i, a := range actions {
		v, ok := p.q.Q(s, a)
		if !ok {
			v = 0
		}
		qs[i] = v
		if v > maxQ {
			maxQ = v
		}
	}
	total := 0.0
	for i := range actions {
		// Subtract the max for numerical stability.
		weights[i] = math.Exp((qs[i] - maxQ) / p.Temp)
		total += weights[i]
	}
	r := p.rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return actions[i], nil
		}
	}
	return actions[len(actions)-1], nil
}

// Improve records the greedy action; selection probabilities already track
// the value estimates, so no distribution change is needed.
func (p *Softmax[S, A]) Improve(s S, best A) { p.greedy[s] = best }

// Greedy returns the remembered greedy action.
func (p *Softmax[S, A]) Greedy(s S) (A, bool) {
	a, ok := p.greedy[s]
	return a, ok
}

// GreedyEntries exports the remembered greedy action of every state
// (unordered), for persistence.
func (p *Softmax[S, A]) GreedyEntries() map[S]A {
	out := make(map[S]A, len(p.greedy))
	for s, a := range p.greedy {
		out[s] = a
	}
	return out
}

// Prob returns the selection probability of a at s given the action set.
func (p *Softmax[S, A]) Prob(s S, a A, actions []A) float64 {
	if len(actions) == 0 {
		return 0
	}
	maxQ := math.Inf(-1)
	qs := make([]float64, len(actions))
	for i, x := range actions {
		v, ok := p.q.Q(s, x)
		if !ok {
			v = 0
		}
		qs[i] = v
		if v > maxQ {
			maxQ = v
		}
	}
	total := 0.0
	target := -1.0
	for i, x := range actions {
		w := math.Exp((qs[i] - maxQ) / p.Temp)
		total += w
		if x == a {
			target = w
		}
	}
	if target < 0 {
		return 0
	}
	return target / total
}
