package rl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSoftmaxPrefersHigherQ(t *testing.T) {
	q := NewQTable[string, int]()
	q.Append("s", 1, 1)  // good
	q.Append("s", 2, -1) // bad
	p := NewSoftmax(0.3, q, rand.New(rand.NewSource(1)))
	counts := map[int]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[mustAction[string, int](t, p, "s", []int{1, 2})]++
	}
	// exp(0/0.3) vs exp(-2/0.3): action 1 should dominate heavily.
	if f := float64(counts[1]) / n; f < 0.95 {
		t.Errorf("good action frequency = %g, want > 0.95", f)
	}
	if counts[2] == 0 {
		t.Error("bad action never explored (softmax keeps nonzero probability)")
	}
}

func TestSoftmaxUntriedActionsOptimistic(t *testing.T) {
	q := NewQTable[string, int]()
	q.Append("s", 1, -1) // punished
	p := NewSoftmax(0.3, q, rand.New(rand.NewSource(2)))
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[mustAction[string, int](t, p, "s", []int{1, 2})]++ // 2 untried => Q 0 > -1
	}
	if counts[2] < counts[1] {
		t.Errorf("untried action chosen less than punished: %v", counts)
	}
}

func TestSoftmaxProbSumsToOne(t *testing.T) {
	q := NewQTable[string, int]()
	q.Append("s", 1, 0.7)
	q.Append("s", 2, -0.4)
	p := NewSoftmax(0.5, q, rand.New(rand.NewSource(3)))
	actions := []int{1, 2, 3}
	sum := 0.0
	for _, a := range actions {
		pr := p.Prob("s", a, actions)
		if pr <= 0 || pr >= 1 {
			t.Errorf("Prob(%d) = %g out of (0,1)", a, pr)
		}
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	if p.Prob("s", 99, actions) != 0 {
		t.Error("Prob of absent action != 0")
	}
	if p.Prob("s", 1, nil) != 0 {
		t.Error("Prob with no actions != 0")
	}
}

func TestSoftmaxGreedyBookkeeping(t *testing.T) {
	q := NewQTable[string, int]()
	p := NewSoftmax(0, q, rand.New(rand.NewSource(4))) // zero temp defaults
	if p.Temp != 0.5 {
		t.Errorf("default Temp = %g", p.Temp)
	}
	if _, seen := p.Greedy("s"); seen {
		t.Error("unseen state reported greedy")
	}
	mustAction[string, int](t, p, "s", []int{7})
	if _, seen := p.Greedy("s"); !seen {
		t.Error("Action did not record the state")
	}
	p.Improve("s", 9)
	if g, _ := p.Greedy("s"); g != 9 {
		t.Errorf("Greedy after Improve = %d", g)
	}
	if m := p.GreedyEntries(); len(m) != 1 || m["s"] != 9 {
		t.Errorf("GreedyEntries = %v", m)
	}
}

func TestSoftmaxErrNoActionsOnEmpty(t *testing.T) {
	// Regression: an empty action set must surface rl.ErrNoActions (this
	// used to panic), matching EpsilonGreedy.
	p := NewSoftmax(0.5, NewQTable[string, int](), rand.New(rand.NewSource(5)))
	a, err := p.Action("s", nil)
	if !errors.Is(err, ErrNoActions) {
		t.Fatalf("Action on empty set: err = %v, want ErrNoActions", err)
	}
	if a != 0 {
		t.Errorf("Action on empty set returned %d, want the zero action", a)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	// Extreme Q values must not produce NaN/zero-total weights.
	q := NewQTable[string, int]()
	q.Append("s", 1, 500)
	q.Append("s", 2, -500)
	p := NewSoftmax(0.1, q, rand.New(rand.NewSource(6)))
	for i := 0; i < 100; i++ {
		a := mustAction[string, int](t, p, "s", []int{1, 2})
		if a != 1 && a != 2 {
			t.Fatalf("invalid action %d", a)
		}
	}
	if pr := p.Prob("s", 1, []int{1, 2}); math.IsNaN(pr) || pr < 0.99 {
		t.Errorf("Prob under extreme Q = %g", pr)
	}
}
