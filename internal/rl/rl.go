// Package rl implements the Monte-Carlo reinforcement-learning primitives
// ALEX builds on (paper §3.1, §4.4): an action-value table estimated from
// returns (first-visit MC), and an ε-greedy policy that mostly takes the
// greedy action but keeps every action's selection probability strictly
// positive, ensuring continuous exploration (§4.4.1).
//
// The package is generic over the state and action types so the learning
// machinery can be tested in isolation from linking; internal/core
// instantiates it with links as states and features as actions.
package rl

import (
	"errors"
	"math/rand"
	"sort"
)

// ErrNoActions is returned by a policy's Action when called with an empty
// action set: a state with no available action has no defined policy, and
// callers must not consult the policy for such states.
var ErrNoActions = errors.New("rl: no available actions")

// sa is a state-action pair key.
type sa[S comparable, A comparable] struct {
	s S
	a A
}

// QTable accumulates returns for state-action pairs and exposes their
// Monte-Carlo action-value estimates Q(s,a) = average return (Algorithm 1,
// line 16). It is not safe for concurrent use; ALEX gives each partition
// its own table.
type QTable[S comparable, A comparable] struct {
	sum   map[sa[S, A]]float64
	count map[sa[S, A]]int
}

// NewQTable returns an empty table.
func NewQTable[S comparable, A comparable]() *QTable[S, A] {
	return &QTable[S, A]{
		sum:   make(map[sa[S, A]]float64),
		count: make(map[sa[S, A]]int),
	}
}

// Append adds one observed return for (s, a).
func (q *QTable[S, A]) Append(s S, a A, ret float64) {
	k := sa[S, A]{s, a}
	q.sum[k] += ret
	q.count[k]++
}

// Q returns the action-value estimate and whether any return has been
// recorded. Per Algorithm 1 line 4, unvisited pairs are "undefined" —
// callers must treat ok == false as no knowledge, not as value zero.
func (q *QTable[S, A]) Q(s S, a A) (float64, bool) {
	k := sa[S, A]{s, a}
	n := q.count[k]
	if n == 0 {
		return 0, false
	}
	return q.sum[k] / float64(n), true
}

// Visits returns the number of returns recorded for (s, a).
func (q *QTable[S, A]) Visits(s S, a A) int {
	return q.count[sa[S, A]{s, a}]
}

// Best returns the greedy action among the candidates: the defined-Q action
// with maximal estimate (Equation 7). The second return is false when no
// candidate has a defined value. Ties break toward the earlier candidate,
// keeping the choice deterministic.
func (q *QTable[S, A]) Best(s S, candidates []A) (A, bool) {
	var best A
	found := false
	bestV := 0.0
	for _, a := range candidates {
		v, ok := q.Q(s, a)
		if !ok {
			continue
		}
		if !found || v > bestV {
			best, bestV, found = a, v, true
		}
	}
	return best, found
}

// BestOptimistic returns the argmax action treating untried actions as
// having value def. With def = 0 and negative rewards for bad outcomes,
// a state whose only tried action performed badly switches its greedy
// choice to an untried alternative instead of being locked onto the bad
// action — the optimistic initialization that makes Monte-Carlo control
// abandon catastrophic first choices. Ties break toward earlier candidates.
func (q *QTable[S, A]) BestOptimistic(s S, candidates []A, def float64) (A, bool) {
	var best A
	if len(candidates) == 0 {
		return best, false
	}
	bestV := 0.0
	found := false
	for _, a := range candidates {
		v, ok := q.Q(s, a)
		if !ok {
			v = def
		}
		if !found || v > bestV {
			best, bestV, found = a, v, true
		}
	}
	return best, true
}

// States returns the number of distinct state-action pairs seen.
func (q *QTable[S, A]) Len() int { return len(q.count) }

// QEntry is one persisted state-action statistic.
type QEntry[S comparable, A comparable] struct {
	State  S
	Action A
	Sum    float64
	Count  int
}

// Entries exports every state-action statistic (unordered), for
// persistence and introspection. The generic key types are not ordered,
// so consumers that need stable bytes sort the exported slice themselves
// (see core.sortPartitionState).
func (q *QTable[S, A]) Entries() []QEntry[S, A] {
	out := make([]QEntry[S, A], 0, len(q.count))
	//lint:ignore nodeterminism documented-unordered export over generic (unsortable) keys; persisting consumers sort
	for k, n := range q.count {
		out = append(out, QEntry[S, A]{State: k.s, Action: k.a, Sum: q.sum[k], Count: n})
	}
	return out
}

// Load restores one state-action statistic, replacing any existing value.
func (q *QTable[S, A]) Load(e QEntry[S, A]) {
	k := sa[S, A]{e.State, e.Action}
	q.sum[k] = e.Sum
	q.count[k] = e.Count
}

// EpsilonGreedy is the paper's ε-greedy policy: with probability 1−ε it
// takes the greedy action recorded by the last policy-improvement step; with
// probability ε it explores uniformly among all available actions, so every
// action keeps probability ≥ ε/|A(s)| (§4.4.1). States never improved yet
// take a deterministic arbitrary action (Algorithm 1 line 5) chosen on
// first sight and remembered.
type EpsilonGreedy[S comparable, A comparable] struct {
	Epsilon float64
	rng     *rand.Rand
	greedy  map[S]A
}

// NewEpsilonGreedy returns a policy with the given exploration rate, using
// rng for its stochastic choices.
func NewEpsilonGreedy[S comparable, A comparable](epsilon float64, rng *rand.Rand) *EpsilonGreedy[S, A] {
	return &EpsilonGreedy[S, A]{Epsilon: epsilon, rng: rng, greedy: make(map[S]A)}
}

// Action selects the action to take at state s among actions (A(s)).
// It returns ErrNoActions if actions is empty; callers must not consult
// the policy for states with no available action.
func (p *EpsilonGreedy[S, A]) Action(s S, actions []A) (A, error) {
	if len(actions) == 0 {
		var zero A
		return zero, ErrNoActions
	}
	g, improved := p.greedy[s]
	if !improved {
		// Arbitrary initial action (Algorithm 1 line 5): chosen uniformly
		// at random on first sight and remembered, so the policy is a
		// function of state, not of call order. A deterministic choice
		// (e.g. always the first feature) would systematically bias new
		// states toward one feature, which can be catastrophic when that
		// feature is indistinct (§4.2's rdf:type example).
		g = actions[p.rng.Intn(len(actions))]
		p.greedy[s] = g
	}
	if p.rng.Float64() < p.Epsilon {
		return actions[p.rng.Intn(len(actions))], nil
	}
	// The remembered greedy action may have disappeared from A(s) (e.g.
	// after rollback); fall back to the first candidate.
	for _, a := range actions {
		if a == g {
			return g, nil
		}
	}
	return actions[0], nil
}

// Improve records a∗ as the greedy action for s (Algorithm 1 lines 24-33).
func (p *EpsilonGreedy[S, A]) Improve(s S, best A) { p.greedy[s] = best }

// Greedy returns the current greedy action for s.
func (p *EpsilonGreedy[S, A]) Greedy(s S) (A, bool) {
	a, ok := p.greedy[s]
	return a, ok
}

// Prob returns π(s, a): the probability the policy selects a at s given the
// available action set. Matches the paper's ε-greedy definition: the greedy
// action has probability 1 − ε + ε/|A(s)|, every other action ε/|A(s)|.
func (p *EpsilonGreedy[S, A]) Prob(s S, a A, actions []A) float64 {
	if len(actions) == 0 {
		return 0
	}
	g, ok := p.greedy[s]
	if !ok {
		g = actions[0]
	}
	uniform := p.Epsilon / float64(len(actions))
	if a == g {
		return 1 - p.Epsilon + uniform
	}
	return uniform
}

// StatesImproved returns the states with a recorded greedy action, sorted
// order unspecified; Len is the count.
func (p *EpsilonGreedy[S, A]) Len() int { return len(p.greedy) }

// GreedyEntries exports the remembered greedy action of every state
// (unordered), for persistence.
func (p *EpsilonGreedy[S, A]) GreedyEntries() map[S]A {
	out := make(map[S]A, len(p.greedy))
	for s, a := range p.greedy {
		out[s] = a
	}
	return out
}

// FirstVisitTracker implements the paper's first-visit rule (§4.4.1): the
// return following the first visit of a state within an episode is counted;
// later visits within the same episode are ignored. Reset clears it at
// episode boundaries, making the next occurrence a new first visit.
type FirstVisitTracker[S comparable] struct {
	seen map[S]struct{}
}

// NewFirstVisitTracker returns an empty tracker.
func NewFirstVisitTracker[S comparable]() *FirstVisitTracker[S] {
	return &FirstVisitTracker[S]{seen: make(map[S]struct{})}
}

// FirstVisit reports whether this is the first visit of s in the current
// episode, and records the visit.
func (t *FirstVisitTracker[S]) FirstVisit(s S) bool {
	if _, ok := t.seen[s]; ok {
		return false
	}
	t.seen[s] = struct{}{}
	return true
}

// Reset starts a new episode.
func (t *FirstVisitTracker[S]) Reset() { t.seen = make(map[S]struct{}) }

// Len returns the number of states visited this episode.
func (t *FirstVisitTracker[S]) Len() int { return len(t.seen) }

// SortedKeys is a test helper exposing deterministic iteration over a map
// keyed by a sortable type.
func SortedKeys[K interface {
	~int | ~uint32 | ~uint64 | ~string
}, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
