package fed

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"alex/internal/endpoint"
	"alex/internal/faultinject"
	"alex/internal/linkset"
	"alex/internal/rdf"
	"alex/internal/store"
)

// faultyRemoteFederation is remoteFederation with the HTTP transport to
// the NYTimes endpoint wrapped in a fault injector: failures happen on the
// wire, below endpoint.Client, the way real endpoint flakiness does.
func faultyRemoteFederation(t *testing.T, cfg faultinject.Config) (*Federation, *faultinject.RoundTripper) {
	t.Helper()
	dict := rdf.NewDict()
	dbpedia := store.New("dbpedia", dict)
	lebronDBP := rdf.NewIRI(dbp + "LeBron_James")
	lebronNYT := rdf.NewIRI(nyt + "lebron_james_per")
	dbpedia.Add(rdf.Triple{S: lebronDBP, P: rdf.NewIRI(dbo + "award"), O: rdf.NewString("NBA MVP 2013")})

	times := store.New("nytimes", rdf.NewDict())
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article1"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article2"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	srv := httptest.NewServer(endpoint.NewHandler(times))
	t.Cleanup(srv.Close)

	rt := faultinject.WrapTransport(srv.Client().Transport, cfg)
	client := &http.Client{Transport: rt}
	f := New(dict, dbpedia)
	f.AddSource(RemoteSource(endpoint.NewClient("nytimes-remote", srv.URL+"/sparql", client)))

	ls := linkset.New()
	ls.Add(linkset.Link{Left: dict.Intern(lebronDBP), Right: dict.Intern(lebronNYT)})
	f.SetLinks(ls)
	return f, rt
}

// TestRemoteRetriesOverFaultyTransport: 30% of HTTP round trips fail at
// the transport; retries above endpoint.Client still complete every query.
func TestRemoteRetriesOverFaultyTransport(t *testing.T) {
	f, rt := faultyRemoteFederation(t, faultinject.Config{ErrorRate: 0.3, Seed: 13})
	f.SetResilience(fastRetries())
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for i := 0; i < rounds; i++ {
		res, err := f.Execute(motivatingQuery)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if len(res.Answers) != 2 {
			t.Fatalf("round %d: answers = %d, want 2", i, len(res.Answers))
		}
	}
	if rt.Failures.Load() == 0 {
		t.Fatal("transport injector never fired")
	}
}

// TestRemoteOutagePartialResults: a hard transport outage on the remote
// endpoint degrades to partial results and trips its breaker.
func TestRemoteOutagePartialResults(t *testing.T) {
	f, rt := faultyRemoteFederation(t, faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 1
	r.BreakerFailures = 2
	r.BreakerCooldown = time.Hour
	r.PartialResults = true
	f.SetResilience(r)
	rt.SetDown(true)

	res, err := f.Execute(motivatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() || res.Skipped[0].Source != "nytimes-remote" {
		t.Fatalf("Skipped = %v, want [nytimes-remote]", res.Skipped)
	}
	if st := f.BreakerState("nytimes-remote"); st != BreakerOpen {
		t.Errorf("remote breaker state = %d, want open", st)
	}
}
