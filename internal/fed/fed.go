// Package fed implements a FedX-style federated query processor — the
// substrate the paper assumes (§3.2).
//
// A Federation holds member sources (in-process stores sharing one term
// dictionary, and/or remote HTTP SPARQL endpoints via internal/endpoint),
// plus a set of owl:sameAs candidate links. Queries are parsed with
// internal/sparql and evaluated against all member sources: each triple
// pattern is routed by predicate-probe source selection (local index probe
// or remote ASK), join order is chosen by a greedy selectivity heuristic,
// bound joins optionally run in parallel, and bound entity terms are
// transparently rewritten through sameAs links so a join can cross
// data-set boundaries. A federation can itself be served as an endpoint
// (EndpointQueryFunc), enabling hierarchical federation.
//
// Every answer row carries provenance: the exact links that were used to
// produce it. ALEX interprets user feedback on an answer as feedback on
// those links (§1, §3.2).
package fed

import (
	"fmt"
	"sort"
	"sync"

	"alex/internal/linkset"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/store"
)

// Federation is a set of member sources (in-process stores and/or remote
// endpoints) plus sameAs links.
type Federation struct {
	dict    *rdf.Dict
	stores  []*store.Store
	sources []Source
	links   *linkset.Set
	// equiv maps an entity to the entities it is linked to, with the
	// canonical Link that justifies each equivalence.
	equiv map[rdf.TermID][]equivEdge
	// reorder enables greedy selectivity-based join reordering (default).
	reorder bool
	// parallel is the worker count for bound joins; 1 disables parallelism.
	parallel int
}

type equivEdge struct {
	to   rdf.TermID
	link linkset.Link
}

// New returns a federation over the given stores, which must share dict.
func New(dict *rdf.Dict, stores ...*store.Store) *Federation {
	f := &Federation{
		dict:     dict,
		stores:   stores,
		links:    linkset.New(),
		equiv:    make(map[rdf.TermID][]equivEdge),
		reorder:  true,
		parallel: 1,
	}
	for _, st := range stores {
		f.sources = append(f.sources, LocalSource(st))
	}
	return f
}

// AddSource adds a member source (e.g. a remote endpoint) to the
// federation.
func (f *Federation) AddSource(src Source) { f.sources = append(f.sources, src) }

// Sources returns the member sources.
func (f *Federation) Sources() []Source { return f.sources }

// Dict returns the shared dictionary.
func (f *Federation) Dict() *rdf.Dict { return f.dict }

// Stores returns the member stores.
func (f *Federation) Stores() []*store.Store { return f.stores }

// SetLinks replaces the active sameAs link set. The federation reads the
// set once; call SetLinks again after the candidate set changes to refresh
// the equivalence index (ALEX does this after every episode).
func (f *Federation) SetLinks(links *linkset.Set) {
	f.links = links
	f.equiv = make(map[rdf.TermID][]equivEdge, links.Len()*2)
	for _, l := range links.Links() {
		f.equiv[l.Left] = append(f.equiv[l.Left], equivEdge{to: l.Right, link: l})
		f.equiv[l.Right] = append(f.equiv[l.Right], equivEdge{to: l.Left, link: l})
	}
}

// Links returns the active link set.
func (f *Federation) Links() *linkset.Set { return f.links }

// Answer is one solution row with the links used to produce it.
type Answer struct {
	Binding sparql.Binding
	Used    []linkset.Link
}

// Result is a federated query result. For CONSTRUCT queries, Triples holds
// the constructed graph (with no per-triple provenance; use SELECT when
// feedback is intended).
type Result struct {
	Vars    []string
	Answers []Answer
	Triples []rdf.Triple
}

// Execute parses and evaluates query against the federation.
func (f *Federation) Execute(query string) (*Result, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return f.Eval(q)
}

// row is a solution under construction: bindings plus link provenance.
type row struct {
	b    sparql.Binding
	used map[linkset.Link]struct{}
}

func (r row) clone() row {
	nr := row{b: r.b.Clone(), used: make(map[linkset.Link]struct{}, len(r.used))}
	for l := range r.used {
		nr.used[l] = struct{}{}
	}
	return nr
}

// Eval evaluates a parsed query against the federation.
func (f *Federation) Eval(q *sparql.Query) (*Result, error) {
	rows, err := f.evalPatterns(q.Patterns, []row{{b: sparql.Binding{}, used: map[linkset.Link]struct{}{}}})
	if err != nil {
		return nil, err
	}
	return f.finalize(q, rows)
}

// AskResult interprets a federated ASK result.
func (r *Result) AskResult() bool { return len(r.Answers) > 0 }

func (f *Federation) finalize(q *sparql.Query, rows []row) (*Result, error) {
	if q.Ask {
		if len(rows) == 0 {
			return &Result{}, nil
		}
		// Keep the witness row's provenance: the links that make the ASK true.
		links := make([]linkset.Link, 0, len(rows[0].used))
		for l := range rows[0].used {
			links = append(links, l)
		}
		return &Result{Answers: []Answer{{Binding: sparql.Binding{}, Used: links}}}, nil
	}
	if q.Construct != nil {
		bindings := make([]sparql.Binding, len(rows))
		for i, r := range rows {
			bindings[i] = r.b
		}
		return &Result{Triples: sparql.InstantiateTemplate(q.Construct, bindings)}, nil
	}
	if len(q.Aggregates) > 0 {
		return f.finalizeAggregates(q, rows)
	}
	vars := q.Vars
	if len(vars) == 0 {
		vars = q.AllVars()
	}
	// Project, then apply DISTINCT / OFFSET / LIMIT over projected rows.
	answers := make([]Answer, 0, len(rows))
	for _, r := range rows {
		b := make(sparql.Binding, len(vars))
		for _, v := range vars {
			if t, ok := r.b[v]; ok {
				b[v] = t
			}
		}
		links := make([]linkset.Link, 0, len(r.used))
		for l := range r.used {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].Left != links[j].Left {
				return links[i].Left < links[j].Left
			}
			return links[i].Right < links[j].Right
		})
		answers = append(answers, Answer{Binding: b, Used: links})
	}
	if len(q.OrderBy) > 0 {
		sortAnswers(answers, q.OrderBy)
	}
	if q.Distinct {
		answers = dedupeAnswers(vars, answers)
	}
	if q.Offset > 0 {
		if q.Offset >= len(answers) {
			answers = nil
		} else {
			answers = answers[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(answers) {
		answers = answers[:q.Limit]
	}
	return &Result{Vars: vars, Answers: answers}, nil
}

// finalizeAggregates groups the federated rows, evaluates the aggregates
// per group, and merges link provenance: feedback on an aggregated answer
// implicates every link that contributed a row to its group.
func (f *Federation) finalizeAggregates(q *sparql.Query, rows []row) (*Result, error) {
	type group struct {
		bindings []sparql.Binding
		used     map[linkset.Link]struct{}
	}
	byKey := map[string]*group{}
	var order []string
	for _, r := range rows {
		k := sparql.GroupKey(q.GroupBy, r.b)
		g, ok := byKey[k]
		if !ok {
			g = &group{used: map[linkset.Link]struct{}{}}
			byKey[k] = g
			order = append(order, k)
		}
		g.bindings = append(g.bindings, r.b)
		for l := range r.used {
			g.used[l] = struct{}{}
		}
	}
	if len(order) == 0 && len(q.GroupBy) == 0 {
		byKey[""] = &group{used: map[linkset.Link]struct{}{}}
		order = append(order, "")
	}
	sort.Strings(order)
	res := &Result{Vars: sparql.AggregateVars(q)}
	for _, k := range order {
		g := byKey[k]
		b, err := sparql.AggregateGroup(q, g.bindings)
		if err != nil {
			return nil, err
		}
		links := make([]linkset.Link, 0, len(g.used))
		for l := range g.used {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].Left != links[j].Left {
				return links[i].Left < links[j].Left
			}
			return links[i].Right < links[j].Right
		})
		res.Answers = append(res.Answers, Answer{Binding: b, Used: links})
	}
	if len(q.OrderBy) > 0 {
		sortAnswers(res.Answers, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Answers) {
			res.Answers = nil
		} else {
			res.Answers = res.Answers[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Answers) {
		res.Answers = res.Answers[:q.Limit]
	}
	return res, nil
}

func sortAnswers(answers []Answer, keys []sparql.OrderKey) {
	sort.SliceStable(answers, func(i, j int) bool {
		for _, k := range keys {
			a, aok := answers[i].Binding[k.Var]
			b, bok := answers[j].Binding[k.Var]
			if !aok && !bok {
				continue
			}
			if !aok || !bok {
				less := !aok
				if k.Desc {
					less = !less
				}
				return less
			}
			if a == b {
				continue
			}
			less := a.String() < b.String()
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
}

func dedupeAnswers(vars []string, answers []Answer) []Answer {
	seen := make(map[string]struct{}, len(answers))
	out := answers[:0]
	for _, a := range answers {
		var key []byte
		for _, v := range vars {
			if t, ok := a.Binding[v]; ok {
				key = append(key, t.String()...)
			}
			key = append(key, 0x1f)
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, a)
	}
	return out
}

func (f *Federation) evalPatterns(patterns []sparql.Pattern, in []row) ([]row, error) {
	rows := in
	for _, p := range patterns {
		var err error
		switch p := p.(type) {
		case sparql.BGP:
			rows, err = f.evalBGP(p, rows)
		case sparql.Filter:
			rows = f.applyFilter(p.Expr, rows)
		case sparql.Optional:
			rows, err = f.evalOptional(p, rows)
		case sparql.Union:
			rows, err = f.evalUnion(p, rows)
		case sparql.Values:
			rows = f.evalValues(p, rows)
		case sparql.Exists:
			rows, err = f.evalExists(p, rows)
		case sparql.Bind:
			rows = f.evalBind(p, rows)
		case sparql.PathPattern:
			err = fmt.Errorf("fed: property paths are not supported in federated queries (path %s)", sparql.PathString(p.P))
		default:
			err = fmt.Errorf("fed: unknown pattern type %T", p)
		}
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func (f *Federation) applyFilter(expr sparql.Expr, rows []row) []row {
	out := rows[:0]
	for _, r := range rows {
		t, err := expr.Eval(r.b)
		if err != nil {
			continue
		}
		v, err := sparql.EBV(t)
		if err == nil && v {
			out = append(out, r)
		}
	}
	return out
}

func (f *Federation) evalOptional(opt sparql.Optional, rows []row) ([]row, error) {
	var out []row
	for _, r := range rows {
		extended, err := f.evalPatterns(opt.Patterns, []row{r.clone()})
		if err != nil {
			return nil, err
		}
		if len(extended) == 0 {
			out = append(out, r)
		} else {
			out = append(out, extended...)
		}
	}
	return out, nil
}

// evalBind extends each row with the bound expression value, mirroring the
// single-store semantics; provenance is untouched.
func (f *Federation) evalBind(bd sparql.Bind, rows []row) []row {
	out := rows[:0]
	for _, r := range rows {
		v, err := bd.Expr.Eval(r.b)
		if err != nil {
			out = append(out, r)
			continue
		}
		if prev, bound := r.b[bd.As]; bound {
			if prev == v {
				out = append(out, r)
			}
			continue
		}
		nr := r.clone()
		nr.b[bd.As] = v
		out = append(out, nr)
	}
	return out
}

// evalValues joins current rows with a VALUES inline data block, keeping
// provenance untouched (inline data uses no links).
func (f *Federation) evalValues(v sparql.Values, rows []row) []row {
	var out []row
	for _, r := range rows {
		for _, data := range v.Rows {
			nr := r.clone()
			ok := true
			for i, name := range v.Vars {
				t := data[i]
				if t.IsZero() {
					continue
				}
				if prev, bound := nr.b[name]; bound {
					if prev != t {
						ok = false
						break
					}
					continue
				}
				nr.b[name] = t
			}
			if ok {
				out = append(out, nr)
			}
		}
	}
	return out
}

// evalExists filters rows by the existence (or absence) of a compatible
// inner-group solution. The probe's link provenance is discarded: an
// existence check constrains the answer but does not produce it, so
// feedback on the answer should not implicate the probe's links.
func (f *Federation) evalExists(e sparql.Exists, rows []row) ([]row, error) {
	out := rows[:0]
	for _, r := range rows {
		matches, err := f.evalPatterns(e.Patterns, []row{r.clone()})
		if err != nil {
			return nil, err
		}
		if (len(matches) > 0) != e.Not {
			out = append(out, r)
		}
	}
	return out, nil
}

func (f *Federation) evalUnion(u sparql.Union, rows []row) ([]row, error) {
	var out []row
	for _, r := range rows {
		left, err := f.evalPatterns(u.Left, []row{r.clone()})
		if err != nil {
			return nil, err
		}
		right, err := f.evalPatterns(u.Right, []row{r.clone()})
		if err != nil {
			return nil, err
		}
		out = append(out, left...)
		out = append(out, right...)
	}
	return out, nil
}

// evalBGP is a bound join: each pattern extends the current rows, with the
// pattern matched against every store selected for it. Patterns run in the
// order chosen by the selectivity-based optimizer (optimize.go); within a
// pattern, rows are processed by SetParallelism workers (FedX's "bound
// joins in parallel"), preserving row order.
func (f *Federation) evalBGP(bgp sparql.BGP, rows []row) ([]row, error) {
	for _, pp := range f.planBGP(bgp, boundVarsOf(rows)) {
		next, err := f.extendRows(pp, rows)
		if err != nil {
			return nil, err
		}
		rows = next
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

// extendRows applies one planned pattern to every row, in parallel when
// configured. Results keep the input row order for determinism.
func (f *Federation) extendRows(pp plannedPattern, rows []row) ([]row, error) {
	workers := f.parallel
	if workers <= 1 || len(rows) < 2*workers {
		var next []row
		for _, r := range rows {
			matched, err := f.matchAcross(pp.sources, pp.tp, r)
			if err != nil {
				return nil, err
			}
			next = append(next, matched...)
		}
		return next, nil
	}
	type chunk struct {
		rows []row
		err  error
	}
	results := make([]chunk, len(rows))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, r := range rows {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, r row) {
			defer wg.Done()
			defer func() { <-sem }()
			matched, err := f.matchAcross(pp.sources, pp.tp, r)
			results[i] = chunk{rows: matched, err: err}
		}(i, r)
	}
	wg.Wait()
	var next []row
	for _, c := range results {
		if c.err != nil {
			return nil, c.err
		}
		next = append(next, c.rows...)
	}
	return next, nil
}

// SetParallelism sets the bound-join worker count (minimum 1). Parallelism
// pays off when sources are remote endpoints with network latency; for
// in-process stores the default of 1 avoids goroutine overhead.
func (f *Federation) SetParallelism(workers int) {
	if workers < 1 {
		workers = 1
	}
	f.parallel = workers
}

// selectSources picks the sources that can possibly answer a pattern,
// using a predicate-presence probe (FedX's ASK-based source selection).
// Patterns with a variable predicate go to every source. Probe errors from
// remote sources conservatively keep the source selected.
func (f *Federation) selectSources(tp sparql.TriplePattern) []Source {
	if tp.P.IsVar() {
		return f.sources
	}
	var out []Source
	for _, src := range f.sources {
		has, err := src.HasPredicate(tp.P.Term)
		if err != nil || has {
			out = append(out, src)
		}
	}
	return out
}

// matchAcross extends one row through one pattern over the selected
// sources, applying sameAs rewriting to bound subject/object entity terms.
func (f *Federation) matchAcross(sources []Source, tp sparql.TriplePattern, r row) ([]row, error) {
	var out []row
	for _, src := range sources {
		// Direct match, no link used.
		bs, err := src.Match(tp, r.b)
		if err != nil {
			return nil, err
		}
		for _, b := range bs {
			nr := row{b: b, used: r.used}
			out = append(out, nr.clone())
		}
		// sameAs-rewritten matches for bound subject and object.
		rewritten, err := f.rewrittenMatches(src, tp, r)
		if err != nil {
			return nil, err
		}
		out = append(out, rewritten...)
	}
	return out, nil
}

// rewrittenMatches substitutes sameAs-equivalent entities for the bound
// subject and/or object of the pattern and records the links used.
func (f *Federation) rewrittenMatches(src Source, tp sparql.TriplePattern, r row) ([]row, error) {
	var out []row
	trySubst := func(pos int, orig rdf.Term, edge equivEdge) error {
		substTerm := f.dict.Term(edge.to)
		np := tp
		var varName string
		switch pos {
		case 0:
			varName = tp.S.Var
			np.S = sparql.TermNode(substTerm)
		case 2:
			varName = tp.O.Var
			np.O = sparql.TermNode(substTerm)
		}
		// Match the rewritten pattern; the variable keeps its ORIGINAL
		// binding (the user sees one entity; the link supplied the alias).
		bs, err := src.Match(np, r.b)
		if err != nil {
			return err
		}
		for _, b := range bs {
			nr := row{b: b, used: r.used}.clone()
			if varName != "" {
				nr.b[varName] = orig
			}
			nr.used[edge.link] = struct{}{}
			out = append(out, nr)
		}
		return nil
	}
	// Subject position: variable already bound to an IRI, or constant IRI.
	if term, ok := boundEntity(tp.S, r.b); ok {
		if id, found := f.dict.Lookup(term); found {
			for _, e := range f.equiv[id] {
				if err := trySubst(0, term, e); err != nil {
					return nil, err
				}
			}
		}
	}
	// Object position.
	if term, ok := boundEntity(tp.O, r.b); ok {
		if id, found := f.dict.Lookup(term); found {
			for _, e := range f.equiv[id] {
				if err := trySubst(2, term, e); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// boundEntity returns the concrete IRI a node denotes under the binding.
func boundEntity(n sparql.Node, b sparql.Binding) (rdf.Term, bool) {
	if n.IsVar() {
		t, ok := b[n.Var]
		if !ok || !t.IsIRI() {
			return rdf.Term{}, false
		}
		return t, true
	}
	if n.Term.IsIRI() {
		return n.Term, true
	}
	return rdf.Term{}, false
}
