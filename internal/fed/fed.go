// Package fed implements a FedX-style federated query processor — the
// substrate the paper assumes (§3.2).
//
// A Federation holds member sources (in-process stores sharing one term
// dictionary, and/or remote HTTP SPARQL endpoints via internal/endpoint),
// plus a set of owl:sameAs candidate links. Queries are parsed with
// internal/sparql and evaluated against all member sources: each triple
// pattern is routed by predicate-probe source selection (local index probe
// or remote ASK), join order is chosen by a greedy selectivity heuristic,
// bound joins optionally run in parallel, and bound entity terms are
// transparently rewritten through sameAs links so a join can cross
// data-set boundaries. A federation can itself be served as an endpoint
// (EndpointQueryFunc), enabling hierarchical federation.
//
// Every answer row carries provenance: the exact links that were used to
// produce it. ALEX interprets user feedback on an answer as feedback on
// those links (§1, §3.2).
package fed

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/store"
)

// Federation is a set of member sources (in-process stores and/or remote
// endpoints) plus sameAs links.
type Federation struct {
	dict    *rdf.Dict
	stores  []*store.Store
	sources []Source
	links   *linkset.Set
	// equiv maps an entity to the entities it is linked to, with the
	// canonical Link that justifies each equivalence.
	equiv map[rdf.TermID][]equivEdge
	// reorder enables greedy selectivity-based join reordering (default).
	reorder bool
	// parallel is the worker count for bound joins; 1 disables parallelism.
	parallel int

	// Data-generation tracking (see DataGeneration). linksGen counts
	// SetLinks calls; genSources holds the generation counters of every
	// member source that exposes one. Both are written only during setup
	// and link refresh, never during query evaluation.
	linksGen   atomic.Uint64
	genSources []func() uint64

	// Fault tolerance (resilience.go). res holds the active policy, resOn
	// caches whether any of it is enabled, breakers maps source name to
	// its circuit breaker. Like sourceNS, breakers is (re)built by
	// SetResilience and AddSource, never during query evaluation, so
	// queries read it without locking; the breakers themselves are
	// internally synchronized.
	res      Resilience
	resOn    bool
	breakers map[string]*breaker
	// jitterRNG randomizes retry backoff; guarded by jitterMu because
	// parallel bound-join workers retry concurrently.
	jitterMu  sync.Mutex
	jitterRNG *rand.Rand

	// Observability. obsReg is nil when disabled; the individual
	// instruments are nil-safe so hot paths call them unconditionally
	// (one branch inside the instrument). sourceNS maps source name to
	// its match-latency histogram; it is (re)built by SetObserver and
	// AddSource, never during query evaluation, so queries read it
	// without locking.
	obsReg        *obs.Registry
	cQueries      *obs.Counter
	hQueryNS      *obs.Histogram
	cSourceProbes *obs.Counter
	cRewrites     *obs.Counter
	cRewriteRows  *obs.Counter
	cBatches      *obs.Counter
	hBatchRows    *obs.Histogram
	cRowsOut      *obs.Counter
	gWorkersBusy  *obs.Gauge
	sourceNS      map[string]*obs.Histogram

	// Resilience instruments (resilience.go).
	cSourceErrors *obs.Counter
	cRetries      *obs.Counter
	cGiveups      *obs.Counter
	cPartial      *obs.Counter
	cSkips        *obs.Counter
}

type equivEdge struct {
	to   rdf.TermID
	link linkset.Link
}

// New returns a federation over the given stores, which must share dict.
func New(dict *rdf.Dict, stores ...*store.Store) *Federation {
	f := &Federation{
		dict:     dict,
		stores:   stores,
		links:    linkset.New(),
		equiv:    make(map[rdf.TermID][]equivEdge),
		reorder:  true,
		parallel: 1,
	}
	for _, st := range stores {
		f.sources = append(f.sources, LocalSource(st))
		f.genSources = append(f.genSources, st.Generation)
	}
	return f
}

// GenerationSource is the optional capability a Source may implement to
// participate in DataGeneration: a counter that strictly increases on
// every mutation of the source's data (store.Store.Generation is the
// canonical implementation; wrappers should forward it).
type GenerationSource interface {
	Generation() uint64
}

// DataGeneration combines the link-set generation and the generation
// counters of every member source that exposes one into a single value
// that changes on any mutation of the federation's data: a store add or
// retract, a bulk load, or a SetLinks swap. Each component is monotonic,
// so the sum strictly increases on every mutation and never revisits a
// value — result caches keyed on it (endpoint.NewQueryCache) can compare
// for exact equality. Sources added without the GenerationSource
// capability (e.g. remote endpoints) are invisible to this counter;
// callers federating such sources should not enable result caching.
func (f *Federation) DataGeneration() uint64 {
	gen := f.linksGen.Load()
	for _, g := range f.genSources {
		gen += g()
	}
	return gen
}

// AddSource adds a member source (e.g. a remote endpoint) to the
// federation.
func (f *Federation) AddSource(src Source) {
	f.sources = append(f.sources, src)
	if g, ok := src.(GenerationSource); ok {
		f.genSources = append(f.genSources, g.Generation)
	}
	if f.obsReg != nil {
		f.sourceNS[src.Name()] = f.obsReg.Histogram(obs.FedSourceMatchNS(src.Name()))
	}
	if f.breakers != nil {
		f.breakers[src.Name()] = newBreaker(f.res)
		f.bindResilienceObs()
	}
}

// SetObserver attaches a metrics registry. Federated-query instruments:
// fed.queries / fed.query_ns (count and latency of Eval calls),
// fed.source_probes (source-selection predicate probes),
// fed.sameas.rewrites / fed.sameas.rows (sameAs substitutions fired and
// the rows they produced), fed.boundjoin.batches / fed.boundjoin.rows
// (bound-join batches and their input cardinalities),
// fed.workers_busy (in-flight bound-join workers under SetParallelism),
// fed.rows (total rows emitted by pattern extension), and per-source
// fed.source.<name>.match_ns latency histograms. Call after all
// AddSource calls, or re-call to pick up new sources; a nil registry
// detaches. Not safe to call concurrently with query evaluation.
func (f *Federation) SetObserver(reg *obs.Registry) {
	f.obsReg = reg
	f.cQueries = reg.Counter(obs.FedQueries)
	f.hQueryNS = reg.Histogram(obs.FedQueryNS)
	f.cSourceProbes = reg.Counter(obs.FedSourceProbes)
	f.cRewrites = reg.Counter(obs.FedSameasRewrites)
	f.cRewriteRows = reg.Counter(obs.FedSameasRows)
	f.cBatches = reg.Counter(obs.FedBoundJoinBatches)
	f.hBatchRows = reg.Histogram(obs.FedBoundJoinRows)
	f.cRowsOut = reg.Counter(obs.FedRows)
	f.gWorkersBusy = reg.Gauge(obs.FedWorkersBusy)
	f.sourceNS = nil
	if reg != nil {
		f.sourceNS = make(map[string]*obs.Histogram, len(f.sources))
		for _, src := range f.sources {
			f.sourceNS[src.Name()] = reg.Histogram(obs.FedSourceMatchNS(src.Name()))
		}
	}
	f.bindResilienceObs()
}

// Sources returns the member sources.
func (f *Federation) Sources() []Source { return f.sources }

// Dict returns the shared dictionary.
func (f *Federation) Dict() *rdf.Dict { return f.dict }

// Stores returns the member stores.
func (f *Federation) Stores() []*store.Store { return f.stores }

// SetLinks replaces the active sameAs link set. The federation reads the
// set once; call SetLinks again after the candidate set changes to refresh
// the equivalence index (ALEX does this after every episode).
func (f *Federation) SetLinks(links *linkset.Set) {
	f.linksGen.Add(1)
	f.links = links
	f.equiv = make(map[rdf.TermID][]equivEdge, links.Len()*2)
	for _, l := range links.Links() {
		f.equiv[l.Left] = append(f.equiv[l.Left], equivEdge{to: l.Right, link: l})
		f.equiv[l.Right] = append(f.equiv[l.Right], equivEdge{to: l.Left, link: l})
	}
}

// Links returns the active link set.
func (f *Federation) Links() *linkset.Set { return f.links }

// Answer is one solution row with the links used to produce it.
type Answer struct {
	Binding sparql.Binding
	Used    []linkset.Link
}

// SourceSkip records a member source that contributed nothing to a result
// because it was unavailable (retry budget exhausted, per-call timeout, or
// circuit breaker open).
type SourceSkip struct {
	Source string `json:"source"`
	Reason string `json:"reason"`
}

// Result is a federated query result. For CONSTRUCT queries, Triples holds
// the constructed graph (with no per-triple provenance; use SELECT when
// feedback is intended). Skipped is non-empty only under
// Resilience.PartialResults: it lists the sources that were unavailable,
// so the answers may be incomplete.
type Result struct {
	Vars    []string
	Answers []Answer
	Triples []rdf.Triple
	Skipped []SourceSkip
}

// Partial reports whether any member source was skipped, i.e. the answers
// may be incomplete.
func (r *Result) Partial() bool { return len(r.Skipped) > 0 }

// Execute parses and evaluates query against the federation.
func (f *Federation) Execute(query string) (*Result, error) {
	return f.ExecuteContext(context.Background(), query)
}

// ExecuteContext is Execute with a context: cancellation and deadline are
// propagated into every source call (including remote HTTP requests), so a
// whole federated query can be bounded by one per-request timeout.
func (f *Federation) ExecuteContext(ctx context.Context, query string) (*Result, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return f.EvalContext(ctx, q)
}

// ExecuteTrace parses and evaluates query, recording an EXPLAIN-style
// span tree: per-pattern spans with source names, join input/output
// cardinalities, sameAs rewrites fired, and per-stage durations. The
// trace is returned even when evaluation fails partway (the recorded
// prefix is often exactly what one wants to see).
func (f *Federation) ExecuteTrace(query string) (*Result, *obs.Trace, error) {
	return f.ExecuteTraceContext(context.Background(), query)
}

// ExecuteTraceContext is ExecuteTrace with a context (see ExecuteContext).
func (f *Federation) ExecuteTraceContext(ctx context.Context, query string) (*Result, *obs.Trace, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	tr := obs.NewTrace("query")
	res, err := f.EvalTraceContext(ctx, q, tr)
	return res, tr, err
}

// row is a solution under construction: bindings plus link provenance.
type row struct {
	b    sparql.Binding
	used map[linkset.Link]struct{}
}

func (r row) clone() row {
	nr := row{b: r.b.Clone(), used: make(map[linkset.Link]struct{}, len(r.used))}
	for l := range r.used {
		nr.used[l] = struct{}{}
	}
	return nr
}

// Eval evaluates a parsed query against the federation.
func (f *Federation) Eval(q *sparql.Query) (*Result, error) {
	return f.EvalTrace(q, nil)
}

// EvalContext is Eval with a context (see ExecuteContext).
func (f *Federation) EvalContext(ctx context.Context, q *sparql.Query) (*Result, error) {
	return f.EvalTraceContext(ctx, q, nil)
}

// EvalTrace evaluates a parsed query, recording spans into tr (nil
// disables tracing; metrics are still recorded when an observer is set).
func (f *Federation) EvalTrace(q *sparql.Query, tr *obs.Trace) (*Result, error) {
	return f.EvalTraceContext(context.Background(), q, tr)
}

// EvalTraceContext evaluates a parsed query under ctx, recording spans
// into tr (nil disables tracing). With Resilience.PartialResults enabled,
// skipped sources are annotated on the root span ("partial", "skipped")
// and returned in Result.Skipped.
func (f *Federation) EvalTraceContext(ctx context.Context, q *sparql.Query, tr *obs.Trace) (*Result, error) {
	var t0 time.Time
	if f.obsReg != nil {
		t0 = time.Now() //lint:ignore nodeterminism query latency histogram only; never feeds query results
	}
	es := newEvalState(ctx)
	sp := tr.Root()
	rows, err := f.evalPatterns(es, q.Patterns, []row{{b: sparql.Binding{}, used: map[linkset.Link]struct{}{}}}, sp)
	if err != nil {
		tr.Finish()
		return nil, err
	}
	fin := sp.Child("finalize")
	fin.SetInt("in", int64(len(rows)))
	res, err := f.finalize(q, rows)
	if err == nil {
		fin.SetInt("out", int64(len(res.Answers)+len(res.Triples)))
		if skips := es.skips(); len(skips) > 0 {
			res.Skipped = skips
			f.cPartial.Inc()
			sp.SetInt("partial", 1)
			names := ""
			for i, sk := range skips {
				if i > 0 {
					names += ","
				}
				names += sk.Source
			}
			sp.SetStr("skipped", names)
		}
	}
	fin.End()
	tr.Finish()
	f.cQueries.Inc()
	if f.obsReg != nil {
		f.hQueryNS.Observe(time.Since(t0).Nanoseconds()) //lint:ignore nodeterminism query latency histogram only; never feeds query results
	}
	return res, err
}

// AskResult interprets a federated ASK result.
func (r *Result) AskResult() bool { return len(r.Answers) > 0 }

func (f *Federation) finalize(q *sparql.Query, rows []row) (*Result, error) {
	if q.Ask {
		if len(rows) == 0 {
			return &Result{}, nil
		}
		// Keep the witness row's provenance: the links that make the ASK true.
		links := make([]linkset.Link, 0, len(rows[0].used))
		for l := range rows[0].used {
			links = append(links, l)
		}
		return &Result{Answers: []Answer{{Binding: sparql.Binding{}, Used: links}}}, nil
	}
	if q.Construct != nil {
		bindings := make([]sparql.Binding, len(rows))
		for i, r := range rows {
			bindings[i] = r.b
		}
		return &Result{Triples: sparql.InstantiateTemplate(q.Construct, bindings)}, nil
	}
	if len(q.Aggregates) > 0 {
		return f.finalizeAggregates(q, rows)
	}
	vars := q.Vars
	if len(vars) == 0 {
		vars = q.AllVars()
	}
	// Project, then apply DISTINCT / OFFSET / LIMIT over projected rows.
	answers := make([]Answer, 0, len(rows))
	for _, r := range rows {
		b := make(sparql.Binding, len(vars))
		for _, v := range vars {
			if t, ok := r.b[v]; ok {
				b[v] = t
			}
		}
		links := make([]linkset.Link, 0, len(r.used))
		for l := range r.used {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].Left != links[j].Left {
				return links[i].Left < links[j].Left
			}
			return links[i].Right < links[j].Right
		})
		answers = append(answers, Answer{Binding: b, Used: links})
	}
	if len(q.OrderBy) > 0 {
		sortAnswers(answers, q.OrderBy)
	}
	if q.Distinct {
		answers = dedupeAnswers(vars, answers)
	}
	if q.Offset > 0 {
		if q.Offset >= len(answers) {
			answers = nil
		} else {
			answers = answers[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(answers) {
		answers = answers[:q.Limit]
	}
	return &Result{Vars: vars, Answers: answers}, nil
}

// finalizeAggregates groups the federated rows, evaluates the aggregates
// per group, and merges link provenance: feedback on an aggregated answer
// implicates every link that contributed a row to its group.
func (f *Federation) finalizeAggregates(q *sparql.Query, rows []row) (*Result, error) {
	type group struct {
		bindings []sparql.Binding
		used     map[linkset.Link]struct{}
	}
	byKey := map[string]*group{}
	var order []string
	for _, r := range rows {
		k := sparql.GroupKey(q.GroupBy, r.b)
		g, ok := byKey[k]
		if !ok {
			g = &group{used: map[linkset.Link]struct{}{}}
			byKey[k] = g
			order = append(order, k)
		}
		g.bindings = append(g.bindings, r.b)
		for l := range r.used {
			g.used[l] = struct{}{}
		}
	}
	if len(order) == 0 && len(q.GroupBy) == 0 {
		byKey[""] = &group{used: map[linkset.Link]struct{}{}}
		order = append(order, "")
	}
	sort.Strings(order)
	res := &Result{Vars: sparql.AggregateVars(q)}
	for _, k := range order {
		g := byKey[k]
		b, err := sparql.AggregateGroup(q, g.bindings)
		if err != nil {
			return nil, err
		}
		links := make([]linkset.Link, 0, len(g.used))
		for l := range g.used {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].Left != links[j].Left {
				return links[i].Left < links[j].Left
			}
			return links[i].Right < links[j].Right
		})
		res.Answers = append(res.Answers, Answer{Binding: b, Used: links})
	}
	if len(q.OrderBy) > 0 {
		sortAnswers(res.Answers, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Answers) {
			res.Answers = nil
		} else {
			res.Answers = res.Answers[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Answers) {
		res.Answers = res.Answers[:q.Limit]
	}
	return res, nil
}

func sortAnswers(answers []Answer, keys []sparql.OrderKey) {
	sort.SliceStable(answers, func(i, j int) bool {
		for _, k := range keys {
			a, aok := answers[i].Binding[k.Var]
			b, bok := answers[j].Binding[k.Var]
			if !aok && !bok {
				continue
			}
			if !aok || !bok {
				less := !aok
				if k.Desc {
					less = !less
				}
				return less
			}
			if a == b {
				continue
			}
			less := a.String() < b.String()
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
}

func dedupeAnswers(vars []string, answers []Answer) []Answer {
	seen := make(map[string]struct{}, len(answers))
	// Per-call term interner: dedupe keys are fixed-width tuples of small
	// ids (0 = unbound) instead of concatenated term strings.
	intern := make(map[rdf.Term]uint32, len(answers))
	key := make([]byte, 0, 4*len(vars))
	out := answers[:0]
	for _, a := range answers {
		key = key[:0]
		for _, v := range vars {
			var id uint32
			if t, ok := a.Binding[v]; ok {
				iid, hit := intern[t]
				if !hit {
					iid = uint32(len(intern)) + 1
					intern[t] = iid
				}
				id = iid
			}
			key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		out = append(out, a)
	}
	return out
}

func (f *Federation) evalPatterns(es *evalState, patterns []sparql.Pattern, in []row, sp *obs.Span) ([]row, error) {
	rows := in
	for _, p := range patterns {
		if err := es.ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		stage := stageSpan(sp, p)
		stage.SetInt("in", int64(len(rows)))
		switch p := p.(type) {
		case sparql.BGP:
			rows, err = f.evalBGP(es, p, rows, stage)
		case sparql.Filter:
			rows = f.applyFilter(p.Expr, rows)
		case sparql.Optional:
			rows, err = f.evalOptional(es, p, rows, stage)
		case sparql.Union:
			rows, err = f.evalUnion(es, p, rows, stage)
		case sparql.Values:
			rows = f.evalValues(p, rows)
		case sparql.Exists:
			rows, err = f.evalExists(es, p, rows, stage)
		case sparql.Bind:
			rows = f.evalBind(p, rows)
		case sparql.PathPattern:
			err = fmt.Errorf("fed: property paths are not supported in federated queries (path %s)", sparql.PathString(p.P))
		default:
			err = fmt.Errorf("fed: unknown pattern type %T", p)
		}
		stage.SetInt("out", int64(len(rows)))
		stage.End()
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// stageSpan opens a child span named after the pattern type.
func stageSpan(sp *obs.Span, p sparql.Pattern) *obs.Span {
	if sp == nil {
		return nil
	}
	switch p.(type) {
	case sparql.BGP:
		return sp.Child("bgp")
	case sparql.Filter:
		return sp.Child("filter")
	case sparql.Optional:
		return sp.Child("optional")
	case sparql.Union:
		return sp.Child("union")
	case sparql.Values:
		return sp.Child("values")
	case sparql.Exists:
		return sp.Child("exists")
	case sparql.Bind:
		return sp.Child("bind")
	default:
		return sp.Child("pattern-group")
	}
}

func (f *Federation) applyFilter(expr sparql.Expr, rows []row) []row {
	out := rows[:0]
	for _, r := range rows {
		t, err := expr.Eval(r.b)
		if err != nil {
			continue
		}
		v, err := sparql.EBV(t)
		if err == nil && v {
			out = append(out, r)
		}
	}
	return out
}

func (f *Federation) evalOptional(es *evalState, opt sparql.Optional, rows []row, sp *obs.Span) ([]row, error) {
	var out []row
	for _, r := range rows {
		extended, err := f.evalPatterns(es, opt.Patterns, []row{r.clone()}, sp)
		if err != nil {
			return nil, err
		}
		if len(extended) == 0 {
			out = append(out, r)
		} else {
			out = append(out, extended...)
		}
	}
	return out, nil
}

// evalBind extends each row with the bound expression value, mirroring the
// single-store semantics; provenance is untouched.
func (f *Federation) evalBind(bd sparql.Bind, rows []row) []row {
	out := rows[:0]
	for _, r := range rows {
		v, err := bd.Expr.Eval(r.b)
		if err != nil {
			out = append(out, r)
			continue
		}
		if prev, bound := r.b[bd.As]; bound {
			if prev == v {
				out = append(out, r)
			}
			continue
		}
		nr := r.clone()
		nr.b[bd.As] = v
		out = append(out, nr)
	}
	return out
}

// evalValues joins current rows with a VALUES inline data block, keeping
// provenance untouched (inline data uses no links).
func (f *Federation) evalValues(v sparql.Values, rows []row) []row {
	var out []row
	for _, r := range rows {
		for _, data := range v.Rows {
			nr := r.clone()
			ok := true
			for i, name := range v.Vars {
				t := data[i]
				if t.IsZero() {
					continue
				}
				if prev, bound := nr.b[name]; bound {
					if prev != t {
						ok = false
						break
					}
					continue
				}
				nr.b[name] = t
			}
			if ok {
				out = append(out, nr)
			}
		}
	}
	return out
}

// evalExists filters rows by the existence (or absence) of a compatible
// inner-group solution. The probe's link provenance is discarded: an
// existence check constrains the answer but does not produce it, so
// feedback on the answer should not implicate the probe's links.
func (f *Federation) evalExists(es *evalState, e sparql.Exists, rows []row, sp *obs.Span) ([]row, error) {
	out := rows[:0]
	for _, r := range rows {
		matches, err := f.evalPatterns(es, e.Patterns, []row{r.clone()}, sp)
		if err != nil {
			return nil, err
		}
		if (len(matches) > 0) != e.Not {
			out = append(out, r)
		}
	}
	return out, nil
}

func (f *Federation) evalUnion(es *evalState, u sparql.Union, rows []row, sp *obs.Span) ([]row, error) {
	var out []row
	for _, r := range rows {
		left, err := f.evalPatterns(es, u.Left, []row{r.clone()}, sp)
		if err != nil {
			return nil, err
		}
		right, err := f.evalPatterns(es, u.Right, []row{r.clone()}, sp)
		if err != nil {
			return nil, err
		}
		out = append(out, left...)
		out = append(out, right...)
	}
	return out, nil
}

// evalBGP is a bound join: each pattern extends the current rows, with the
// pattern matched against every store selected for it. Patterns run in the
// order chosen by the selectivity-based optimizer (optimize.go); within a
// pattern, rows are processed by SetParallelism workers (FedX's "bound
// joins in parallel"), preserving row order.
func (f *Federation) evalBGP(es *evalState, bgp sparql.BGP, rows []row, sp *obs.Span) ([]row, error) {
	plan, err := f.planBGP(es, bgp, boundVarsOf(rows))
	if err != nil {
		return nil, err
	}
	for _, pp := range plan {
		var psp *obs.Span
		if sp != nil {
			psp = sp.Child("pattern")
			psp.SetStr("tp", pp.tp.String())
			psp.SetStr("sources", sourceNames(pp.sources))
			if pp.exclusive {
				psp.SetInt("exclusive", 1)
			}
			psp.SetInt("in", int64(len(rows)))
		}
		next, err := f.extendRows(es, pp, rows, psp)
		if err != nil {
			psp.End()
			return nil, err
		}
		rows = next
		psp.SetInt("out", int64(len(rows)))
		psp.End()
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

// sourceNames renders a source list compactly for span attributes.
func sourceNames(sources []Source) string {
	names := ""
	for i, src := range sources {
		if i > 0 {
			names += ","
		}
		names += src.Name()
	}
	return names
}

// extendRows applies one planned pattern to every row, in parallel when
// configured. Results keep the input row order for determinism.
func (f *Federation) extendRows(es *evalState, pp plannedPattern, rows []row, psp *obs.Span) ([]row, error) {
	f.cBatches.Inc()
	f.hBatchRows.Observe(int64(len(rows)))
	workers := f.parallel
	if workers <= 1 || len(rows) < 2*workers {
		// Serial batch: compile the pattern once per capable source so
		// constant resolution and bound-term interning amortize over the
		// whole row batch. Only without resilience or metrics — the batch
		// matcher bypasses the retry/timing wrappers, and its memo cache is
		// unsynchronized (which is also why the parallel branch passes nil).
		var matchers map[Source]func(sparql.Binding) []sparql.Binding
		if !f.resOn && f.obsReg == nil {
			for _, src := range pp.sources {
				bm, ok := src.(BatchMatcher)
				if !ok {
					continue
				}
				if matchers == nil {
					matchers = make(map[Source]func(sparql.Binding) []sparql.Binding, len(pp.sources))
				}
				matchers[src] = bm.BatchMatcher(pp.tp)
			}
		}
		var next []row
		for _, r := range rows {
			if err := es.ctx.Err(); err != nil {
				return nil, err
			}
			matched, err := f.matchAcross(es, pp.sources, pp.tp, r, matchers, psp)
			if err != nil {
				return nil, err
			}
			next = append(next, matched...)
		}
		f.cRowsOut.Add(int64(len(next)))
		return next, nil
	}
	type chunk struct {
		rows []row
		err  error
	}
	results := make([]chunk, len(rows))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, r := range rows {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, r row) {
			defer wg.Done()
			defer func() { <-sem }()
			f.gWorkersBusy.Add(1)
			defer f.gWorkersBusy.Add(-1)
			matched, err := f.matchAcross(es, pp.sources, pp.tp, r, nil, psp)
			results[i] = chunk{rows: matched, err: err}
		}(i, r)
	}
	wg.Wait()
	var next []row
	for _, c := range results {
		if c.err != nil {
			return nil, c.err
		}
		next = append(next, c.rows...)
	}
	f.cRowsOut.Add(int64(len(next)))
	return next, nil
}

// SetParallelism sets the bound-join worker count (minimum 1). Parallelism
// pays off when sources are remote endpoints with network latency; for
// in-process stores the default of 1 avoids goroutine overhead.
func (f *Federation) SetParallelism(workers int) {
	if workers < 1 {
		workers = 1
	}
	f.parallel = workers
}

// selectSources picks the sources that can possibly answer a pattern,
// using a predicate-presence probe (FedX's ASK-based source selection).
// Patterns with a variable predicate go to every source. Probe errors from
// remote sources conservatively keep the source selected — the later
// bound-join call will surface (or degrade) the failure. Sources whose
// circuit breaker is open, or that were already skipped earlier in this
// query, are ejected up front.
func (f *Federation) selectSources(es *evalState, tp sparql.TriplePattern) ([]Source, error) {
	var out []Source
	for _, src := range f.sources {
		if f.resOn {
			if es.isSkipped(src.Name()) {
				continue
			}
			if !f.breakers[src.Name()].allow() {
				err := f.degrade(es, src, &SourceUnavailableError{Source: src.Name(), Err: ErrCircuitOpen})
				if err != nil {
					return nil, err
				}
				continue
			}
		}
		if tp.P.IsVar() {
			out = append(out, src)
			continue
		}
		f.cSourceProbes.Inc()
		has, err := f.hasPredicate(es, src, tp.P.Term)
		if err != nil || has {
			out = append(out, src)
		}
	}
	return out, nil
}

// hasPredicate is src.HasPredicate under the fault-tolerance policy: the
// ASK probe gets the same timeout/retry/breaker treatment as bound joins.
func (f *Federation) hasPredicate(es *evalState, src Source, pred rdf.Term) (bool, error) {
	var has bool
	err := f.callSource(es.ctx, src, func(ctx context.Context) error {
		var err error
		has, err = src.HasPredicate(ctx, pred)
		return err
	})
	return has, err
}

// matchAcross extends one row through one pattern over the selected
// sources, applying sameAs rewriting to bound subject/object entity terms.
// Under Resilience.PartialResults a source that fails past its retry
// budget is skipped for the remainder of the query instead of failing it.
func (f *Federation) matchAcross(es *evalState, sources []Source, tp sparql.TriplePattern, r row, matchers map[Source]func(sparql.Binding) []sparql.Binding, psp *obs.Span) ([]row, error) {
	var out []row
	for _, src := range sources {
		if f.resOn && es.isSkipped(src.Name()) {
			continue
		}
		// Direct match, no link used. A batch matcher (serial bound joins
		// only, see extendRows) skips the per-call pattern recompilation.
		var bs []sparql.Binding
		var err error
		if m := matchers[src]; m != nil {
			bs = m(r.b)
		} else {
			bs, err = f.timedMatch(es, src, tp, r.b)
		}
		if err != nil {
			if err = f.degrade(es, src, err); err != nil {
				return nil, err
			}
			continue
		}
		for _, b := range bs {
			nr := row{b: b, used: r.used}
			out = append(out, nr.clone())
		}
		// sameAs-rewritten matches for bound subject and object.
		rewritten, err := f.rewrittenMatches(es, src, tp, r, psp)
		if err != nil {
			if err = f.degrade(es, src, err); err != nil {
				return nil, err
			}
			continue
		}
		out = append(out, rewritten...)
	}
	return out, nil
}

// timedMatch is src.Match under the fault-tolerance policy (callSource)
// plus the per-source latency histogram. The clock is only read when an
// observer is attached.
func (f *Federation) timedMatch(es *evalState, src Source, tp sparql.TriplePattern, b sparql.Binding) ([]sparql.Binding, error) {
	if !f.resOn && f.obsReg == nil {
		// Fast path: no policy and no observer means no retry loop and no
		// timing, so skip the closure the retry machinery needs.
		return src.Match(es.ctx, tp, b)
	}
	var bs []sparql.Binding
	match := func(ctx context.Context) error {
		var err error
		bs, err = src.Match(ctx, tp, b)
		return err
	}
	if f.obsReg == nil {
		return bs, f.callSource(es.ctx, src, match)
	}
	t0 := time.Now() //lint:ignore nodeterminism per-source latency metric only; never feeds query results
	err := f.callSource(es.ctx, src, match)
	if h := f.sourceNS[src.Name()]; h != nil {
		h.Observe(time.Since(t0).Nanoseconds()) //lint:ignore nodeterminism latency histogram only; never feeds query results
	}
	return bs, err
}

// rewrittenMatches substitutes sameAs-equivalent entities for the bound
// subject and/or object of the pattern and records the links used.
func (f *Federation) rewrittenMatches(es *evalState, src Source, tp sparql.TriplePattern, r row, psp *obs.Span) ([]row, error) {
	var out []row
	// Sources sharing the federation dictionary accept the equivalence
	// edge's id directly (MatchSubst), skipping the id → term → pattern →
	// id round trip. Only without resilience or metrics: MatchSubst
	// bypasses the retry/timing wrappers of timedMatch.
	sm, smOK := src.(SubstMatcher)
	smOK = smOK && !f.resOn && f.obsReg == nil && sm.SubstDict() == f.dict
	trySubst := func(pos int, orig rdf.Term, edge equivEdge) error {
		// The matched rows keep the variable's ORIGINAL binding (the user
		// sees one entity; the link supplied the alias).
		f.cRewrites.Inc()
		var varName string
		switch pos {
		case 0:
			varName = tp.S.Var
		case 2:
			varName = tp.O.Var
		}
		var bs []sparql.Binding
		var err error
		if smOK {
			var sSub, oSub rdf.TermID
			if pos == 0 {
				sSub = edge.to
			} else {
				oSub = edge.to
			}
			bs, err = sm.MatchSubst(es.ctx, tp, r.b, sSub, oSub)
		} else {
			substTerm := f.dict.Term(edge.to)
			np := tp
			switch pos {
			case 0:
				np.S = sparql.TermNode(substTerm)
			case 2:
				np.O = sparql.TermNode(substTerm)
			}
			bs, err = f.timedMatch(es, src, np, r.b)
		}
		if err != nil {
			return err
		}
		if len(bs) > 0 {
			f.cRewriteRows.Add(int64(len(bs)))
			psp.AddInt("rewrites", int64(len(bs)))
		}
		for _, b := range bs {
			nr := row{b: b, used: r.used}.clone()
			if varName != "" {
				nr.b[varName] = orig
			}
			nr.used[edge.link] = struct{}{}
			out = append(out, nr)
		}
		return nil
	}
	// Subject position: variable already bound to an IRI, or constant IRI.
	if term, ok := boundEntity(tp.S, r.b); ok {
		if id, found := f.dict.Lookup(term); found {
			for _, e := range f.equiv[id] {
				if err := trySubst(0, term, e); err != nil {
					return nil, err
				}
			}
		}
	}
	// Object position.
	if term, ok := boundEntity(tp.O, r.b); ok {
		if id, found := f.dict.Lookup(term); found {
			for _, e := range f.equiv[id] {
				if err := trySubst(2, term, e); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// boundEntity returns the concrete IRI a node denotes under the binding.
func boundEntity(n sparql.Node, b sparql.Binding) (rdf.Term, bool) {
	if n.IsVar() {
		t, ok := b[n.Var]
		if !ok || !t.IsIRI() {
			return rdf.Term{}, false
		}
		return t, true
	}
	if n.Term.IsIRI() {
		return n.Term, true
	}
	return rdf.Term{}, false
}
