package fed

import (
	"net/http/httptest"
	"strings"
	"testing"

	"alex/internal/endpoint"
	"alex/internal/linkset"
	"alex/internal/rdf"
	"alex/internal/store"
)

// remoteFederation rebuilds the motivating example with the NYTimes data
// set behind an HTTP SPARQL endpoint instead of in-process: the true
// distributed setting of the paper's Figure 1.
func remoteFederation(t *testing.T) (*Federation, linkset.Link) {
	t.Helper()
	dict := rdf.NewDict()
	dbpedia := store.New("dbpedia", dict)
	lebronDBP := rdf.NewIRI(dbp + "LeBron_James")
	lebronNYT := rdf.NewIRI(nyt + "lebron_james_per")
	dbpedia.Add(rdf.Triple{S: lebronDBP, P: rdf.NewIRI(dbo + "award"), O: rdf.NewString("NBA MVP 2013")})

	// The NYTimes side lives behind HTTP. Note it has its own dictionary:
	// nothing is shared with the local federation except IRI strings.
	times := store.New("nytimes", rdf.NewDict())
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article1"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article2"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	srv := httptest.NewServer(endpoint.NewHandler(times))
	t.Cleanup(srv.Close)

	f := New(dict, dbpedia)
	f.AddSource(RemoteSource(endpoint.NewClient("nytimes-remote", srv.URL+"/sparql", srv.Client())))

	link := linkset.Link{Left: dict.Intern(lebronDBP), Right: dict.Intern(lebronNYT)}
	ls := linkset.New()
	ls.Add(link)
	f.SetLinks(ls)
	return f, link
}

func TestRemoteFederatedJoin(t *testing.T) {
	f, link := remoteFederation(t)
	res, err := f.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	} ORDER BY ?article`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %v", res.Answers)
	}
	for _, a := range res.Answers {
		if len(a.Used) != 1 || a.Used[0] != link {
			t.Errorf("remote answer provenance = %v", a.Used)
		}
	}
	if res.Answers[0].Binding["article"].Value != nyt+"article1" {
		t.Errorf("answer 0 = %v", res.Answers[0].Binding)
	}
}

func TestRemoteSourceSelection(t *testing.T) {
	f, _ := remoteFederation(t)
	plan, err := f.PlanDescription(`SELECT ?a WHERE { ?a <` + nyo + `about> ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan = %v", plan)
	}
	// The ASK probe must route the pattern to the remote endpoint only.
	if want := "nytimes-remote"; !contains(plan[0], want) {
		t.Errorf("plan = %v, want source %s", plan, want)
	}
	if contains(plan[0], "{dbpedia}") {
		t.Errorf("local store incorrectly selected: %v", plan)
	}
}

func TestRemoteFederatedAggregate(t *testing.T) {
	f, _ := remoteFederation(t)
	res, err := f.Execute(`SELECT (COUNT(?article) AS ?n) WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["n"].Value != "2" {
		t.Errorf("remote aggregate = %v", res.Answers)
	}
}

func TestRemoteEndpointDownSurfacesError(t *testing.T) {
	dict := rdf.NewDict()
	local := store.New("local", dict)
	local.Add(rdf.Triple{S: rdf.NewIRI("http://x/s"), P: rdf.NewIRI("http://x/p"), O: rdf.NewString("v")})
	f := New(dict, local)
	f.AddSource(RemoteSource(endpoint.NewClient("dead", "http://127.0.0.1:1/sparql", nil)))
	// Patterns with a variable predicate are routed to every source,
	// including the dead one; the error must surface, not be swallowed.
	if _, err := f.Execute(`SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Error("dead endpoint error swallowed")
	}
}

func contains(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}

// TestHierarchicalFederation serves a two-store federation as an endpoint
// and queries it from a second-level federation: a federator of federators.
func TestHierarchicalFederation(t *testing.T) {
	// Level 0: the motivating federation served over HTTP.
	inner, _ := motivatingFederation(t)
	srv := httptest.NewServer(endpoint.NewQueryHandler(EndpointQueryFunc(inner), nil))
	t.Cleanup(srv.Close)

	// Level 1: a fresh federation whose only source is the inner one.
	outer := New(rdf.NewDict())
	outer.AddSource(RemoteSource(endpoint.NewClient("inner-fed", srv.URL+"/sparql", srv.Client())))

	res, err := outer.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	} ORDER BY ?article`)
	if err != nil {
		t.Fatal(err)
	}
	// The inner federation does the sameAs bridging; the outer one just
	// forwards patterns.
	if len(res.Answers) != 2 {
		t.Fatalf("hierarchical answers = %v", res.Answers)
	}
}

func TestParallelBoundJoins(t *testing.T) {
	f, _ := remoteFederation(t)
	f.SetParallelism(4)
	res, err := f.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	} ORDER BY ?article`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("parallel answers = %v", res.Answers)
	}
	// Determinism: results equal the serial run.
	f.SetParallelism(1)
	serial, err := f.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	} ORDER BY ?article`)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Answers) != len(res.Answers) {
		t.Fatalf("serial %d vs parallel %d", len(serial.Answers), len(res.Answers))
	}
	for i := range serial.Answers {
		if serial.Answers[i].Binding["article"] != res.Answers[i].Binding["article"] {
			t.Errorf("row %d differs", i)
		}
	}
	// Invalid worker counts coerce to 1.
	f.SetParallelism(-3)
	if _, err := f.Execute(`ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
}
