package fed

import (
	"context"

	"alex/internal/rdf"
	"alex/internal/sparql"
)

// This file implements the FedX-style query optimizations the paper's
// substrate relies on (Schwarte et al., ISWC 2011): source selection by
// predicate probe (in fed.go) and greedy selectivity-based join reordering,
// so bound joins touch the smallest intermediate results first.

// plannedPattern is one triple pattern with its selected sources and the
// cost estimate used for ordering.
type plannedPattern struct {
	tp      sparql.TriplePattern
	sources []Source
	// exclusive marks patterns answerable by exactly one source — FedX's
	// exclusive groups; they never multiply intermediate results across
	// sources.
	exclusive bool
}

// planBGP orders the patterns of a basic graph pattern greedily by
// estimated cost: starting from the externally bound variables, repeatedly
// pick the cheapest pattern given what is bound so far, then mark its
// variables bound. This is the classic variable-counting heuristic FedX
// uses; it needs no data statistics beyond predicate counts.
func (f *Federation) planBGP(es *evalState, bgp sparql.BGP, bound map[string]bool) ([]plannedPattern, error) {
	remaining := make([]plannedPattern, 0, len(bgp.Triples))
	for _, tp := range bgp.Triples {
		src, err := f.selectSources(es, tp)
		if err != nil {
			return nil, err
		}
		remaining = append(remaining, plannedPattern{
			tp:        tp,
			sources:   src,
			exclusive: len(src) == 1,
		})
	}
	if !f.reorder {
		return remaining, nil
	}
	boundVars := make(map[string]bool, len(bound))
	for v := range bound {
		boundVars[v] = true
	}
	ordered := make([]plannedPattern, 0, len(remaining))
	for len(remaining) > 0 {
		bestIdx := 0
		bestCost := f.estimateCost(es, remaining[0], boundVars)
		for i := 1; i < len(remaining); i++ {
			if c := f.estimateCost(es, remaining[i], boundVars); c < bestCost {
				bestCost, bestIdx = c, i
			}
		}
		chosen := remaining[bestIdx]
		ordered = append(ordered, chosen)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		for _, v := range chosen.tp.Vars() {
			boundVars[v] = true
		}
	}
	return ordered, nil
}

// estimateCost scores a pattern given the currently bound variables: lower
// is more selective. The base is the total triple count for the pattern's
// predicate across its sources (or all triples for a variable predicate),
// discounted heavily for a bound subject and moderately for a bound object,
// with a penalty per candidate source.
func (f *Federation) estimateCost(es *evalState, p plannedPattern, bound map[string]bool) float64 {
	base := 0.0
	if !p.tp.P.IsVar() {
		for _, src := range p.sources {
			n, err := f.predicateCount(es, src, p.tp.P.Term)
			if err != nil {
				// Remote estimate unavailable: assume expensive.
				n = 1 << 20
			}
			base += float64(n)
		}
	} else {
		for _, src := range p.sources {
			n, err := f.sourceSize(es, src)
			if err != nil {
				n = 1 << 20
			}
			base += float64(n)
		}
	}
	if base == 0 {
		return 0 // empty pattern: run it first, it terminates the join
	}
	isBound := func(n sparql.Node) bool {
		if n.IsVar() {
			return bound[n.Var]
		}
		return !n.Term.IsZero()
	}
	if isBound(p.tp.S) {
		base /= 16
	}
	if isBound(p.tp.O) {
		base /= 4
	}
	// Multiple sources multiply the bound-join fan-out.
	base *= float64(len(p.sources))
	return base
}

// predicateCount and sourceSize are the cost model's COUNT probes under
// the fault-tolerance policy (retries, timeouts, breaker accounting); on
// a healthy passthrough they are plain source calls.

func (f *Federation) predicateCount(es *evalState, src Source, pred rdf.Term) (int, error) {
	var n int
	err := f.callSource(es.ctx, src, func(ctx context.Context) error {
		var err error
		n, err = src.PredicateCount(ctx, pred)
		return err
	})
	return n, err
}

func (f *Federation) sourceSize(es *evalState, src Source) (int, error) {
	var n int
	err := f.callSource(es.ctx, src, func(ctx context.Context) error {
		var err error
		n, err = src.Size(ctx)
		return err
	})
	return n, err
}

// boundVarsOf extracts the variables already bound in any current row.
func boundVarsOf(rows []row) map[string]bool {
	out := map[string]bool{}
	for _, r := range rows {
		for v := range r.b {
			out[v] = true
		}
	}
	return out
}

// DisableReorder turns off join reordering (naive written order), for the
// optimizer ablation benchmark.
func (f *Federation) DisableReorder() { f.reorder = false }

// EnableReorder restores the default greedy reordering.
func (f *Federation) EnableReorder() { f.reorder = true }

// PlanDescription reports, for diagnostics and tests, the evaluation order
// and per-pattern source names the optimizer chose for a query's first BGP.
func (f *Federation) PlanDescription(query string) ([]string, error) {
	return f.PlanDescriptionContext(context.Background(), query)
}

// PlanDescriptionContext is PlanDescription with a caller-supplied context
// bounding the cost-model probes (ASK/COUNT against remote sources) that
// planning can issue.
func (f *Federation) PlanDescriptionContext(ctx context.Context, query string) ([]string, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	for _, p := range q.Patterns {
		bgp, ok := p.(sparql.BGP)
		if !ok {
			continue
		}
		plan, err := f.planBGP(newEvalState(ctx), bgp, map[string]bool{})
		if err != nil {
			return nil, err
		}
		out := make([]string, len(plan))
		for i, pp := range plan {
			names := ""
			for j, st := range pp.sources {
				if j > 0 {
					names += ","
				}
				names += st.Name()
			}
			marker := ""
			if pp.exclusive {
				marker = " [exclusive]"
			}
			out[i] = pp.tp.String() + " @ {" + names + "}" + marker
		}
		return out, nil
	}
	return nil, nil
}
