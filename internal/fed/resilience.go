package fed

// This file is the federation's fault-tolerance layer. Remote sources are
// routinely slow, flaky or down (Umbrich et al., "Improving the Recall of
// Decentralised Linked Data Querying"), so every source call can be
// wrapped with a per-call timeout, bounded retries with exponential
// backoff and jitter, and a per-source circuit breaker that quarantines a
// failing endpoint: after BreakerFailures consecutive failures the breaker
// opens and the source is ejected from source selection until
// BreakerCooldown elapses, then a half-open trial call decides between
// closing it again and re-opening. With PartialResults enabled a source
// that stays unavailable past its retry budget is skipped instead of
// failing the query, and the result is annotated with the skipped sources.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"alex/internal/obs"
)

// Resilience configures the federation's fault-tolerance. The zero value
// disables everything; DefaultResilience returns production-shaped
// settings. Install with Federation.SetResilience.
type Resilience struct {
	// Timeout bounds each individual source call (one ASK/COUNT probe or
	// one bound-join batch). Zero means no per-call timeout; the caller's
	// context deadline still applies.
	Timeout time.Duration
	// MaxRetries is how many times a failed source call is retried beyond
	// the first attempt.
	MaxRetries int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Zero means no cap.
	BackoffMax time.Duration
	// Jitter is the fraction (0..1) of each backoff delay that is
	// randomized, de-synchronizing retry storms across workers.
	Jitter float64
	// BreakerFailures is the number of consecutive failures that opens a
	// source's circuit breaker. Zero disables the breaker.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects calls before
	// allowing a half-open trial.
	BreakerCooldown time.Duration
	// BreakerProbes is the number of consecutive half-open successes
	// required to close the breaker again (minimum 1).
	BreakerProbes int
	// PartialResults degrades gracefully: a source that is unavailable
	// past its retry budget (or breaker-open) is skipped and recorded in
	// Result.Skipped instead of failing the whole query.
	PartialResults bool
	// Seed makes the backoff jitter deterministic, for tests. Zero seeds
	// from the default source.
	Seed int64
}

// DefaultResilience returns the recommended production settings: 10s
// per-call timeout, 2 retries starting at 50ms backoff (capped at 2s, 20%
// jitter), breaker opening after 5 consecutive failures with a 10s
// cooldown, partial results off.
func DefaultResilience() Resilience {
	return Resilience{
		Timeout:         10 * time.Second,
		MaxRetries:      2,
		BackoffBase:     50 * time.Millisecond,
		BackoffMax:      2 * time.Second,
		Jitter:          0.2,
		BreakerFailures: 5,
		BreakerCooldown: 10 * time.Second,
		BreakerProbes:   1,
	}
}

// ErrCircuitOpen marks calls rejected because the source's circuit breaker
// is open. Use errors.Is against a SourceUnavailableError's cause.
var ErrCircuitOpen = errors.New("circuit breaker open")

// SourceUnavailableError reports that a member source could not answer a
// call after exhausting its retry budget (or was quarantined by its
// breaker). With PartialResults enabled it never escapes Execute — the
// source is skipped instead.
type SourceUnavailableError struct {
	Source string
	Err    error
}

func (e *SourceUnavailableError) Error() string {
	return fmt.Sprintf("fed: source %s unavailable: %v", e.Source, e.Err)
}

func (e *SourceUnavailableError) Unwrap() error { return e.Err }

// Breaker states, exported through Federation.BreakerState and the
// fed.breaker.<name>.state gauge.
const (
	BreakerClosed   = 0
	BreakerOpen     = 1
	BreakerHalfOpen = 2
)

// breaker is one source's circuit breaker: closed (normal), open
// (quarantined after BreakerFailures consecutive failures) and half-open
// (cooldown elapsed, trial calls admitted). It is safe for concurrent use
// by parallel bound-join workers.
type breaker struct {
	cfg Resilience

	mu        sync.Mutex
	state     int
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	openedAt  time.Time

	gState *obs.Gauge   // 0 closed / 1 open / 2 half-open
	cOpens *obs.Counter // transitions into open
}

func newBreaker(cfg Resilience) *breaker { return &breaker{cfg: cfg} }

// allow reports whether a call may proceed, transitioning open → half-open
// once the cooldown has elapsed.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cfg.BreakerCooldown { //lint:ignore nodeterminism breaker cooldown is wall-clock by contract; sims drive it via failure counts, not time
		b.setState(BreakerHalfOpen)
		b.successes = 0
	}
	return b.state != BreakerOpen
}

// onSuccess records a successful call: it resets the failure streak, and
// in half-open counts toward closing.
func (b *breaker) onSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.successes++
		probes := b.cfg.BreakerProbes
		if probes < 1 {
			probes = 1
		}
		if b.successes >= probes {
			b.setState(BreakerClosed)
			b.failures = 0
		}
	default:
		b.failures = 0
	}
}

// onFailure records a failed call: half-open re-opens immediately; closed
// opens once the consecutive-failure threshold is reached.
func (b *breaker) onFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.BreakerFailures {
			b.open()
		}
	}
}

// open transitions into the open state. Caller holds b.mu.
func (b *breaker) open() {
	b.openedAt = time.Now() //lint:ignore nodeterminism breaker cooldown is wall-clock by contract; sims drive it via failure counts, not time
	if b.state != BreakerOpen {
		b.setState(BreakerOpen)
		b.cOpens.Inc()
	}
}

// setState updates the state and its gauge. Caller holds b.mu.
func (b *breaker) setState(s int) {
	b.state = s
	b.gState.Set(int64(s))
}

// currentState returns the breaker state without side effects.
func (b *breaker) currentState() int {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// SetResilience installs (or, with the zero Resilience, removes) the
// fault-tolerance layer: per-call timeouts, retries with exponential
// backoff + jitter, per-source circuit breakers and optional partial
// results. Metrics (when an observer is attached): fed.source_errors,
// fed.retries, fed.retry_giveups, fed.breaker_opens and per-source
// fed.breaker.<name>.state gauges, fed.partial_queries and
// fed.skipped_sources. Like SetObserver, call it after AddSource and never
// concurrently with query evaluation.
func (f *Federation) SetResilience(r Resilience) {
	f.res = r
	f.resOn = r != (Resilience{})
	f.breakers = nil
	if f.resOn && r.BreakerFailures > 0 {
		f.breakers = make(map[string]*breaker, len(f.sources))
		for _, src := range f.sources {
			f.breakers[src.Name()] = newBreaker(r)
		}
	}
	seed := r.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() //lint:ignore nodeterminism production fallback when no seed given; deterministic runs always set Resilience.Seed
	}
	f.jitterMu.Lock()
	f.jitterRNG = rand.New(rand.NewSource(seed))
	f.jitterMu.Unlock()
	f.bindResilienceObs()
}

// Resilience returns the active fault-tolerance configuration (the zero
// value when disabled).
func (f *Federation) Resilience() Resilience { return f.res }

// BreakerState reports a source's circuit-breaker state (BreakerClosed,
// BreakerOpen or BreakerHalfOpen). Sources without a breaker — unknown
// names, breaker disabled — report BreakerClosed.
func (f *Federation) BreakerState(source string) int {
	return f.breakers[source].currentState()
}

// bindResilienceObs (re)binds the resilience instruments to the current
// registry; nil-safe on a detached registry.
func (f *Federation) bindResilienceObs() {
	f.cSourceErrors = f.obsReg.Counter(obs.FedSourceErrors)
	f.cRetries = f.obsReg.Counter(obs.FedRetries)
	f.cGiveups = f.obsReg.Counter(obs.FedRetryGiveups)
	f.cPartial = f.obsReg.Counter(obs.FedPartialQueries)
	f.cSkips = f.obsReg.Counter(obs.FedSkippedSources)
	cOpens := f.obsReg.Counter(obs.FedBreakerOpens)
	for name, br := range f.breakers {
		br.mu.Lock()
		br.cOpens = cOpens
		br.gState = f.obsReg.Gauge(obs.FedBreakerState(name))
		br.gState.Set(int64(br.state))
		br.mu.Unlock()
	}
}

// backoff returns the jittered exponential delay before retry attempt
// (0-based).
func (f *Federation) backoff(attempt int) time.Duration {
	d := f.res.BackoffBase
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if f.res.BackoffMax > 0 && d >= f.res.BackoffMax {
			d = f.res.BackoffMax
			break
		}
	}
	if f.res.Jitter > 0 {
		f.jitterMu.Lock()
		frac := 1 + f.res.Jitter*(2*f.jitterRNG.Float64()-1)
		f.jitterMu.Unlock()
		d = time.Duration(float64(d) * frac)
	}
	return d
}

// callSource runs one source operation under the fault-tolerance policy:
// breaker admission, per-call timeout, bounded retries with backoff. The
// error returned after exhaustion is a *SourceUnavailableError. With
// resilience disabled it is a plain passthrough.
func (f *Federation) callSource(ctx context.Context, src Source, op func(ctx context.Context) error) error {
	if !f.resOn {
		return op(ctx)
	}
	br := f.breakers[src.Name()]
	if !br.allow() {
		return &SourceUnavailableError{Source: src.Name(), Err: ErrCircuitOpen}
	}
	var err error
	for attempt := 0; ; attempt++ {
		cctx, cancel := ctx, context.CancelFunc(func() {})
		if f.res.Timeout > 0 {
			cctx, cancel = context.WithTimeout(ctx, f.res.Timeout)
		}
		err = op(cctx)
		cancel()
		if err == nil {
			br.onSuccess()
			return nil
		}
		f.cSourceErrors.Inc()
		br.onFailure()
		// Never retry when the caller's own context is done (the failure
		// is ours, not the source's) or the budget is spent.
		if ctx.Err() != nil || attempt >= f.res.MaxRetries {
			break
		}
		f.cRetries.Inc()
		if d := f.backoff(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				f.cGiveups.Inc()
				return &SourceUnavailableError{Source: src.Name(), Err: ctx.Err()}
			}
		}
	}
	f.cGiveups.Inc()
	return &SourceUnavailableError{Source: src.Name(), Err: err}
}

// evalState carries one query evaluation's context and graceful-degradation
// bookkeeping. skip is called from parallel bound-join workers, hence the
// mutex.
type evalState struct {
	ctx context.Context

	mu      sync.Mutex
	skipped map[string]string // source name -> reason
}

func newEvalState(ctx context.Context) *evalState {
	return &evalState{ctx: ctx}
}

// skip records that a source was dropped from this query; the first
// recorded reason wins.
func (es *evalState) skip(source, reason string) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.skipped == nil {
		es.skipped = make(map[string]string)
	}
	if _, dup := es.skipped[source]; !dup {
		es.skipped[source] = reason
	}
}

// isSkipped reports whether the source has already been dropped from this
// query — once unavailable, it is not re-tried for later patterns.
func (es *evalState) isSkipped(source string) bool {
	es.mu.Lock()
	defer es.mu.Unlock()
	_, ok := es.skipped[source]
	return ok
}

// skips returns the recorded skips, sorted by source name.
func (es *evalState) skips() []SourceSkip {
	es.mu.Lock()
	defer es.mu.Unlock()
	if len(es.skipped) == 0 {
		return nil
	}
	out := make([]SourceSkip, 0, len(es.skipped))
	for s, r := range es.skipped {
		out = append(out, SourceSkip{Source: s, Reason: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// degrade decides what to do with a failed source call: with
// PartialResults on, the source is skipped (recorded in the result and the
// trace) and evaluation continues; otherwise the error fails the query.
func (f *Federation) degrade(es *evalState, src Source, err error) error {
	if !f.res.PartialResults {
		return err
	}
	reason := "unavailable"
	if errors.Is(err, ErrCircuitOpen) {
		reason = "circuit open"
	} else if errors.Is(err, context.DeadlineExceeded) {
		reason = "timeout"
	}
	if !es.isSkipped(src.Name()) {
		f.cSkips.Inc()
	}
	es.skip(src.Name(), reason)
	return nil
}
