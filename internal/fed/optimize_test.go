package fed

import (
	"strings"
	"testing"

	"alex/internal/rdf"
	"alex/internal/store"
)

// skewedFederation builds two stores with very different predicate
// frequencies so the optimizer has something to reorder: "common" has many
// triples, "rare" has one.
func skewedFederation(t *testing.T) *Federation {
	t.Helper()
	dict := rdf.NewDict()
	big := store.New("big", dict)
	small := store.New("small", dict)
	for i := 0; i < 200; i++ {
		big.Add(rdf.Triple{
			S: rdf.NewIRI("http://x/e" + itoa(i)),
			P: rdf.NewIRI("http://x/common"),
			O: rdf.NewString("v" + itoa(i%10)),
		})
	}
	small.Add(rdf.Triple{
		S: rdf.NewIRI("http://x/e7"),
		P: rdf.NewIRI("http://x/rare"),
		O: rdf.NewString("needle"),
	})
	return New(dict, big, small)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestPlanReordersBySelectivity(t *testing.T) {
	f := skewedFederation(t)
	// Written order puts the huge pattern first; the optimizer must run
	// the rare (1-triple) pattern first.
	plan, err := f.PlanDescription(`SELECT ?s ?v WHERE {
		?s <http://x/common> ?v .
		?s <http://x/rare> "needle" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan = %v", plan)
	}
	if !strings.Contains(plan[0], "rare") {
		t.Errorf("selective pattern not first: %v", plan)
	}
	if !strings.Contains(plan[0], "[exclusive]") {
		t.Errorf("single-source pattern not marked exclusive: %v", plan)
	}
}

func TestPlanRespectsDisableReorder(t *testing.T) {
	f := skewedFederation(t)
	f.DisableReorder()
	plan, err := f.PlanDescription(`SELECT ?s ?v WHERE {
		?s <http://x/common> ?v .
		?s <http://x/rare> "needle" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan[0], "common") {
		t.Errorf("naive order not preserved: %v", plan)
	}
	f.EnableReorder()
	plan, _ = f.PlanDescription(`SELECT ?s ?v WHERE {
		?s <http://x/common> ?v .
		?s <http://x/rare> "needle" .
	}`)
	if !strings.Contains(plan[0], "rare") {
		t.Errorf("reorder not restored: %v", plan)
	}
}

func TestPlanSameResultsEitherOrder(t *testing.T) {
	f := skewedFederation(t)
	q := `SELECT ?s ?v WHERE {
		?s <http://x/common> ?v .
		?s <http://x/rare> "needle" .
	}`
	ordered, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	f.DisableReorder()
	naive, err := f.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ordered.Answers) != len(naive.Answers) {
		t.Fatalf("ordered %d answers, naive %d", len(ordered.Answers), len(naive.Answers))
	}
	if len(ordered.Answers) != 1 || ordered.Answers[0].Binding["s"].Value != "http://x/e7" {
		t.Errorf("answers = %v", ordered.Answers)
	}
}

func TestEstimateCostBoundPositions(t *testing.T) {
	f := skewedFederation(t)
	plan, err := f.PlanDescription(`SELECT ?a ?b WHERE {
		?a <http://x/common> ?b .
		<http://x/e7> <http://x/common> ?b .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	// The bound-subject pattern is cheaper and must run first.
	if !strings.Contains(plan[0], "<http://x/e7>") {
		t.Errorf("bound-subject pattern not first: %v", plan)
	}
}

func TestPlanDescriptionErrors(t *testing.T) {
	f := skewedFederation(t)
	if _, err := f.PlanDescription("NOT SPARQL"); err == nil {
		t.Error("expected parse error")
	}
	plan, err := f.PlanDescription(`SELECT * WHERE { FILTER(1 = 1) }`)
	if err != nil || plan != nil {
		t.Errorf("no-BGP query: plan=%v err=%v", plan, err)
	}
}

func TestFederatedAsk(t *testing.T) {
	f, link := motivatingFederation(t)
	res, err := f.Execute(`ASK {
		?p <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AskResult() {
		t.Fatal("federated ASK false, want true")
	}
	// The witness answer carries the link that made the ASK true.
	if len(res.Answers[0].Used) != 1 || res.Answers[0].Used[0] != link {
		t.Errorf("ASK provenance = %v", res.Answers[0].Used)
	}
	res, err = f.Execute(`ASK { ?p <` + dbo + `award> "NBA MVP 1901" }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.AskResult() {
		t.Error("federated ASK true, want false")
	}
}

func TestFederatedValues(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?article WHERE {
		VALUES ?p { <` + dbp + `LeBron_James> }
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %v", res.Answers)
	}
	for _, a := range res.Answers {
		if len(a.Used) != 1 {
			t.Errorf("VALUES-bound entity should still bridge via links: %v", a)
		}
	}
}

func TestFederatedAggregateProvenance(t *testing.T) {
	f, link := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?p (COUNT(?article) AS ?n) WHERE {
		?p <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?p .
	} GROUP BY ?p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %v", res.Answers)
	}
	a := res.Answers[0]
	if a.Binding["n"].Value != "2" {
		t.Errorf("count = %v", a.Binding["n"])
	}
	// The aggregated answer carries the union of the group's links.
	if len(a.Used) != 1 || a.Used[0] != link {
		t.Errorf("aggregate provenance = %v", a.Used)
	}
}

func TestFederatedAggregateEmptyGroup(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT (COUNT(?x) AS ?n) WHERE {
		?x <` + dbo + `award> "never awarded" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["n"].Value != "0" {
		t.Errorf("empty aggregate = %v", res.Answers)
	}
}

func TestFederatedNotExists(t *testing.T) {
	f, _ := motivatingFederation(t)
	// Players with an award but no NYT article about them.
	res, err := f.Execute(`SELECT ?p WHERE {
		?p <` + dbo + `award> ?a .
		FILTER NOT EXISTS { ?article <` + nyo + `about> ?p }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["p"].Value != dbp+"Kevin_Durant" {
		t.Errorf("NOT EXISTS answers = %v", res.Answers)
	}
	// EXISTS: the LeBron entity has articles (through the link), and the
	// probe's provenance is NOT attached to the answer.
	res, err = f.Execute(`SELECT ?p WHERE {
		?p <` + dbo + `award> ?a .
		FILTER EXISTS { ?article <` + nyo + `about> ?p }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["p"].Value != dbp+"LeBron_James" {
		t.Fatalf("EXISTS answers = %v", res.Answers)
	}
	if len(res.Answers[0].Used) != 0 {
		t.Errorf("EXISTS probe leaked provenance: %v", res.Answers[0].Used)
	}
}

func TestFederatedConstruct(t *testing.T) {
	f, _ := motivatingFederation(t)
	// Materialize cross-data-set facts: which DBpedia players have NYT
	// coverage.
	res, err := f.Execute(`CONSTRUCT { ?p <http://out/coveredBy> ?article } WHERE {
		?p <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 2 {
		t.Fatalf("triples = %v", res.Triples)
	}
	for _, tr := range res.Triples {
		if tr.S.Value != dbp+"LeBron_James" || tr.P.Value != "http://out/coveredBy" {
			t.Errorf("triple = %v", tr)
		}
	}
}
