package fed

import (
	"context"
	"errors"
	"testing"
	"time"

	"alex/internal/faultinject"
	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/store"
)

// faultyFederation rebuilds the motivating two-source federation with each
// source wrapped in a fault injector, so tests can dial in error rates and
// outages per source.
func faultyFederation(t *testing.T, dbpCfg, nytCfg faultinject.Config) (*Federation, *faultinject.Source, *faultinject.Source) {
	t.Helper()
	dict := rdf.NewDict()
	dbpedia := store.New("dbpedia", dict)
	times := store.New("nytimes", dict)

	lebronDBP := rdf.NewIRI(dbp + "LeBron_James")
	lebronNYT := rdf.NewIRI(nyt + "lebron_james_per")
	dbpedia.Add(rdf.Triple{S: lebronDBP, P: rdf.NewIRI(dbo + "award"), O: rdf.NewString("NBA MVP 2013")})
	dbpedia.Add(rdf.Triple{S: rdf.NewIRI(dbp + "Kevin_Durant"), P: rdf.NewIRI(dbo + "award"), O: rdf.NewString("NBA MVP 2014")})
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article1"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article2"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})

	f := New(dict)
	fiDBP := faultinject.Wrap(LocalSource(dbpedia), dbpCfg)
	fiNYT := faultinject.Wrap(LocalSource(times), nytCfg)
	f.AddSource(fiDBP)
	f.AddSource(fiNYT)
	ls := linkset.New()
	ls.Add(linkset.Link{Left: dict.Intern(lebronDBP), Right: dict.Intern(lebronNYT)})
	f.SetLinks(ls)
	return f, fiDBP, fiNYT
}

// motivatingQuery is shared with obs_test.go.

// fastRetries is a test policy: generous retry budget, microsecond
// backoff, no breaker, so flaky-but-up sources always come through.
func fastRetries() Resilience {
	return Resilience{
		Timeout:     time.Second,
		MaxRetries:  8,
		BackoffBase: time.Microsecond,
		BackoffMax:  10 * time.Microsecond,
		Jitter:      0.2,
		Seed:        42,
	}
}

// TestRetriesSurviveTransientErrors is the headline fault-injection claim:
// with 30% injected transient errors on every source call, every federated
// query still succeeds via retries, and the retry metrics record the work.
func TestRetriesSurviveTransientErrors(t *testing.T) {
	cfg := faultinject.Config{ErrorRate: 0.3, Seed: 7}
	f, fiDBP, fiNYT := faultyFederation(t, cfg, cfg)
	f.SetResilience(fastRetries())
	reg := obs.NewRegistry()
	f.SetObserver(reg)

	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	for i := 0; i < rounds; i++ {
		res, err := f.Execute(motivatingQuery)
		if err != nil {
			t.Fatalf("round %d: query failed despite retries: %v", i, err)
		}
		if len(res.Answers) != 2 {
			t.Fatalf("round %d: answers = %d, want 2", i, len(res.Answers))
		}
		if res.Partial() {
			t.Fatalf("round %d: unexpected partial result: %v", i, res.Skipped)
		}
	}
	injected := fiDBP.Failures.Load() + fiNYT.Failures.Load()
	if injected == 0 {
		t.Fatal("fault injector never fired; test proves nothing")
	}
	snap := reg.Snapshot()
	if snap.Counters["fed.retries"] == 0 {
		t.Error("fed.retries = 0, want > 0")
	}
	if snap.Counters["fed.source_errors"] != injected {
		t.Errorf("fed.source_errors = %d, want %d (injected)", snap.Counters["fed.source_errors"], injected)
	}
	if snap.Counters["fed.retry_giveups"] != 0 {
		t.Errorf("fed.retry_giveups = %d, want 0", snap.Counters["fed.retry_giveups"])
	}
}

// TestBreakerTripsAndPartialResults: a hard-down source exhausts its retry
// budget, trips its breaker, is ejected from source selection, and the
// query completes with partial results flagged in the result, the trace
// and the metrics.
func TestBreakerTripsAndPartialResults(t *testing.T) {
	f, fiDBP, _ := faultyFederation(t, faultinject.Config{}, faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 1
	r.BreakerFailures = 2
	r.BreakerCooldown = time.Hour // no recovery during this test
	r.PartialResults = true
	f.SetResilience(r)
	reg := obs.NewRegistry()
	f.SetObserver(reg)
	fiDBP.SetDown(true)

	res, tr, err := f.ExecuteTrace(motivatingQuery)
	if err != nil {
		t.Fatalf("partial-results query failed: %v", err)
	}
	if !res.Partial() {
		t.Fatal("result not flagged partial with a hard-down source")
	}
	if len(res.Skipped) != 1 || res.Skipped[0].Source != "dbpedia" {
		t.Fatalf("Skipped = %v, want [dbpedia]", res.Skipped)
	}
	// The join is empty without dbpedia, but the query must still finish.
	if len(res.Answers) != 0 {
		t.Fatalf("answers = %d, want 0 (join key source is down)", len(res.Answers))
	}
	if got, _ := tr.Root().Int("partial"); got != 1 {
		t.Error("trace root missing partial=1 annotation")
	}
	if got, _ := tr.Root().Str("skipped"); got != "dbpedia" {
		t.Errorf("trace skipped = %q, want dbpedia", got)
	}
	if st := f.BreakerState("dbpedia"); st != BreakerOpen {
		t.Errorf("dbpedia breaker state = %d, want open", st)
	}
	if st := f.BreakerState("nytimes"); st != BreakerClosed {
		t.Errorf("nytimes breaker state = %d, want closed", st)
	}

	// Second query: the open breaker must eject the source during source
	// selection, without a single call reaching the injector.
	calls0 := fiDBP.Calls.Load()
	res2, err := f.Execute(motivatingQuery)
	if err != nil {
		t.Fatalf("second query failed: %v", err)
	}
	if !res2.Partial() {
		t.Fatal("second result not flagged partial")
	}
	if got := fiDBP.Calls.Load(); got != calls0 {
		t.Errorf("open breaker admitted %d call(s) to the down source", got-calls0)
	}

	snap := reg.Snapshot()
	if snap.Counters["fed.breaker_opens"] != 1 {
		t.Errorf("fed.breaker_opens = %d, want 1", snap.Counters["fed.breaker_opens"])
	}
	if snap.Counters["fed.partial_queries"] != 2 {
		t.Errorf("fed.partial_queries = %d, want 2", snap.Counters["fed.partial_queries"])
	}
	if snap.Counters["fed.skipped_sources"] != 2 {
		t.Errorf("fed.skipped_sources = %d, want 2", snap.Counters["fed.skipped_sources"])
	}
	if snap.Gauges["fed.breaker.dbpedia.state"] != BreakerOpen {
		t.Errorf("breaker state gauge = %d, want %d", snap.Gauges["fed.breaker.dbpedia.state"], BreakerOpen)
	}
}

// TestBreakerRecoversThroughHalfOpen: after the source heals and the
// cooldown elapses, a trial call in half-open closes the breaker and full
// results come back.
func TestBreakerRecoversThroughHalfOpen(t *testing.T) {
	f, fiDBP, _ := faultyFederation(t, faultinject.Config{}, faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 0
	r.BreakerFailures = 1
	r.BreakerCooldown = 10 * time.Millisecond
	r.PartialResults = true
	f.SetResilience(r)

	fiDBP.SetDown(true)
	if _, err := f.Execute(motivatingQuery); err != nil {
		t.Fatal(err)
	}
	if st := f.BreakerState("dbpedia"); st != BreakerOpen {
		t.Fatalf("breaker state after outage = %d, want open", st)
	}

	// Heal the source and wait out the cooldown: the next admission check
	// moves the breaker to half-open, the trial call succeeds and closes it.
	fiDBP.SetDown(false)
	time.Sleep(15 * time.Millisecond)
	res, err := f.Execute(motivatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial() {
		t.Fatalf("result still partial after recovery: %v", res.Skipped)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers after recovery = %d, want 2", len(res.Answers))
	}
	if st := f.BreakerState("dbpedia"); st != BreakerClosed {
		t.Errorf("breaker state after recovery = %d, want closed", st)
	}
}

// TestHalfOpenFailureReopens: a failed trial call in half-open re-opens
// the breaker immediately.
func TestHalfOpenFailureReopens(t *testing.T) {
	f, fiDBP, _ := faultyFederation(t, faultinject.Config{}, faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 0
	r.BreakerFailures = 1
	r.BreakerCooldown = time.Millisecond
	r.PartialResults = true
	f.SetResilience(r)

	fiDBP.SetDown(true)
	if _, err := f.Execute(motivatingQuery); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // cooldown elapses, source still down
	if _, err := f.Execute(motivatingQuery); err != nil {
		t.Fatal(err)
	}
	if st := f.BreakerState("dbpedia"); st != BreakerOpen {
		t.Errorf("breaker state after failed half-open trial = %d, want open", st)
	}
}

// TestPerCallTimeout: a slow source breaches the per-call timeout and is
// skipped with the "timeout" reason.
func TestPerCallTimeout(t *testing.T) {
	f, _, _ := faultyFederation(t, faultinject.Config{Latency: 200 * time.Millisecond}, faultinject.Config{})
	r := Resilience{
		Timeout:        10 * time.Millisecond,
		PartialResults: true,
		Seed:           1,
	}
	f.SetResilience(r)
	res, err := f.Execute(motivatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() {
		t.Fatal("slow source not skipped under per-call timeout")
	}
	if res.Skipped[0].Source != "dbpedia" || res.Skipped[0].Reason != "timeout" {
		t.Errorf("Skipped = %v, want dbpedia/timeout", res.Skipped)
	}
}

// TestNoPartialResultsFailsHard: without PartialResults, an unavailable
// source fails the whole query with a SourceUnavailableError.
func TestNoPartialResultsFailsHard(t *testing.T) {
	f, fiDBP, _ := faultyFederation(t, faultinject.Config{}, faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 1
	f.SetResilience(r)
	fiDBP.SetDown(true)
	_, err := f.Execute(motivatingQuery)
	var su *SourceUnavailableError
	if !errors.As(err, &su) {
		t.Fatalf("err = %v, want *SourceUnavailableError", err)
	}
	if su.Source != "dbpedia" {
		t.Errorf("unavailable source = %q, want dbpedia", su.Source)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("cause not preserved through wrapping: %v", err)
	}
}

// TestContextCancellationPropagates: cancelling the caller's context aborts
// evaluation instead of retrying through it.
func TestContextCancellationPropagates(t *testing.T) {
	f, _ := motivatingFederation(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.ExecuteContext(ctx, motivatingQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryDeadlineBoundsSlowSource: a whole-query deadline cuts through a
// slow source even with no per-call timeout configured.
func TestQueryDeadlineBoundsSlowSource(t *testing.T) {
	f, _, _ := faultyFederation(t, faultinject.Config{Latency: time.Second}, faultinject.Config{})
	f.SetResilience(Resilience{MaxRetries: 0, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := f.ExecuteContext(ctx, motivatingQuery)
	if err == nil {
		t.Fatal("query succeeded despite deadline shorter than source latency")
	}
	if took := time.Since(t0); took > 500*time.Millisecond {
		t.Errorf("deadline not enforced: query took %v", took)
	}
}

// TestResilienceDisabledPassthrough: the zero policy leaves behavior
// untouched — errors surface raw and no breakers exist.
func TestResilienceDisabledPassthrough(t *testing.T) {
	f, fiDBP, _ := faultyFederation(t, faultinject.Config{}, faultinject.Config{})
	fiDBP.SetDown(true)
	_, err := f.Execute(motivatingQuery)
	if err == nil {
		t.Fatal("want raw error with resilience disabled")
	}
	var su *SourceUnavailableError
	if errors.As(err, &su) {
		t.Errorf("raw error got wrapped without resilience: %v", err)
	}
	if st := f.BreakerState("dbpedia"); st != BreakerClosed {
		t.Errorf("breaker exists without resilience: state %d", st)
	}
}

// TestBackoffShape: backoff grows exponentially, respects the cap, and
// jitter stays within the configured fraction.
func TestBackoffShape(t *testing.T) {
	f, _ := motivatingFederation(t)
	f.SetResilience(Resilience{
		MaxRetries:  5,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Jitter:      0.5,
		Seed:        99,
	})
	want := []time.Duration{10, 20, 40, 40, 40} // ms, pre-jitter
	for attempt, base := range want {
		base *= time.Millisecond
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		for i := 0; i < 20; i++ {
			d := f.backoff(attempt)
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

// TestBackoffDeterministicSeed: the same seed yields the same jitter
// sequence.
func TestBackoffDeterministicSeed(t *testing.T) {
	mk := func() []time.Duration {
		f, _ := motivatingFederation(t)
		f.SetResilience(Resilience{MaxRetries: 3, BackoffBase: time.Millisecond, Jitter: 1, Seed: 7})
		var out []time.Duration
		for i := 0; i < 10; i++ {
			out = append(out, f.backoff(i%3))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSourceSkippedOnceStaysSkipped: after a source is skipped it is not
// re-contacted for later patterns of the same query, but a fresh query
// tries it again (breaker permitting).
func TestSourceSkippedOnceStaysSkipped(t *testing.T) {
	f, fiDBP, _ := faultyFederation(t, faultinject.Config{}, faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 0
	r.PartialResults = true
	f.SetResilience(r)
	fiDBP.SetDown(true)

	if _, err := f.Execute(motivatingQuery); err != nil {
		t.Fatal(err)
	}
	calls := fiDBP.Calls.Load()
	// No breaker configured: a new query probes the source again.
	if _, err := f.Execute(motivatingQuery); err != nil {
		t.Fatal(err)
	}
	if got := fiDBP.Calls.Load(); got <= calls {
		t.Error("fresh query never re-tried the skipped source (no breaker configured)")
	}
}

// TestParallelBoundJoinUnderFaults: the retry/degrade path is exercised by
// concurrent bound-join workers without data races (run under -race in CI)
// and still produces correct, complete answers.
func TestParallelBoundJoinUnderFaults(t *testing.T) {
	cfg := faultinject.Config{ErrorRate: 0.3, Seed: 11}
	f, _, _ := faultyFederation(t, cfg, cfg)
	f.SetParallelism(4)
	f.SetResilience(fastRetries())
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for i := 0; i < rounds; i++ {
		res, err := f.Execute(motivatingQuery)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if len(res.Answers) != 2 {
			t.Fatalf("round %d: answers = %d, want 2", i, len(res.Answers))
		}
	}
}

// TestSoakMixedFaults is the soak-style run: many rounds against one flaky
// and one healthy source with an outage window in the middle; every query
// must either fully succeed or be flagged partial, never fail.
func TestSoakMixedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	f, fiDBP, _ := faultyFederation(t,
		faultinject.Config{ErrorRate: 0.2, Seed: 3},
		faultinject.Config{})
	r := fastRetries()
	r.MaxRetries = 6
	r.BreakerFailures = 8
	r.BreakerCooldown = 5 * time.Millisecond
	r.PartialResults = true
	f.SetResilience(r)

	partials := 0
	for i := 0; i < 300; i++ {
		if i == 100 {
			fiDBP.SetDown(true)
		}
		if i == 200 {
			fiDBP.SetDown(false)
			time.Sleep(10 * time.Millisecond) // let the cooldown elapse
		}
		res, err := f.Execute(motivatingQuery)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if res.Partial() {
			partials++
			continue
		}
		if len(res.Answers) != 2 {
			t.Fatalf("round %d: complete result with %d answers, want 2", i, len(res.Answers))
		}
	}
	if partials < 100 {
		t.Errorf("partials = %d, want >= 100 (outage window)", partials)
	}
	if partials > 210 {
		t.Errorf("partials = %d: breaker failed to recover after heal", partials)
	}
	if st := f.BreakerState("dbpedia"); st != BreakerClosed {
		t.Errorf("final breaker state = %d, want closed", st)
	}
}
