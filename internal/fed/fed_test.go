package fed

import (
	"context"
	"testing"

	"alex/internal/linkset"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/store"
)

const (
	dbp = "http://dbpedia.example/resource/"
	nyt = "http://nytimes.example/id/"
	dbo = "http://dbpedia.example/ontology/"
	nyo = "http://nytimes.example/ontology/"
)

// motivatingFederation reproduces the paper's introduction example: DBpedia
// knows who the NBA MVP of 2013 is; the New York Times data set has the
// articles. Answering "articles about the 2013 MVP" requires the sameAs
// link between the two LeBron James entities.
func motivatingFederation(t *testing.T) (*Federation, linkset.Link) {
	t.Helper()
	dict := rdf.NewDict()
	dbpedia := store.New("dbpedia", dict)
	times := store.New("nytimes", dict)

	lebronDBP := rdf.NewIRI(dbp + "LeBron_James")
	lebronNYT := rdf.NewIRI(nyt + "lebron_james_per")

	dbpedia.Add(rdf.Triple{S: lebronDBP, P: rdf.NewIRI(dbo + "award"), O: rdf.NewString("NBA MVP 2013")})
	dbpedia.Add(rdf.Triple{S: lebronDBP, P: rdf.NewIRI(rdf.RDFSLabel), O: rdf.NewString("LeBron James")})
	dbpedia.Add(rdf.Triple{S: rdf.NewIRI(dbp + "Kevin_Durant"), P: rdf.NewIRI(dbo + "award"), O: rdf.NewString("NBA MVP 2014")})

	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article1"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article2"), P: rdf.NewIRI(nyo + "about"), O: lebronNYT})
	times.Add(rdf.Triple{S: rdf.NewIRI(nyt + "article3"), P: rdf.NewIRI(nyo + "about"), O: rdf.NewIRI(nyt + "someone_else_per")})

	f := New(dict, dbpedia, times)
	link := linkset.Link{Left: dict.Intern(lebronDBP), Right: dict.Intern(lebronNYT)}
	ls := linkset.New()
	ls.Add(link)
	f.SetLinks(ls)
	return f, link
}

func TestFederatedMotivatingExample(t *testing.T) {
	f, link := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2 (got %v)", len(res.Answers), res.Answers)
	}
	for _, a := range res.Answers {
		if len(a.Used) != 1 || a.Used[0] != link {
			t.Errorf("answer %v used links %v, want [%v]", a.Binding, a.Used, link)
		}
	}
}

func TestFederatedNoLinkNoAnswer(t *testing.T) {
	f, _ := motivatingFederation(t)
	f.SetLinks(linkset.New()) // remove all links
	res, err := f.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("answers without links = %v", res.Answers)
	}
}

func TestFederatedSingleSourceNoProvenance(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?p WHERE { ?p <` + dbo + `award> "NBA MVP 2013" }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %v", res.Answers)
	}
	if len(res.Answers[0].Used) != 0 {
		t.Errorf("single-source answer has provenance %v", res.Answers[0].Used)
	}
}

func TestFederatedVariableKeepsOriginalBinding(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?player ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		// The user asked about the DBpedia entity; the NYT alias must not
		// leak into the projection.
		if got := a.Binding["player"].Value; got != dbp+"LeBron_James" {
			t.Errorf("?player = %s, want DBpedia IRI", got)
		}
	}
}

func TestFederatedConstantSubjectRewrite(t *testing.T) {
	f, link := motivatingFederation(t)
	// Constant DBpedia IRI in object position of a NYT pattern.
	res, err := f.Execute(`SELECT ?article WHERE {
		?article <` + nyo + `about> <` + dbp + `LeBron_James> .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	if len(res.Answers[0].Used) != 1 || res.Answers[0].Used[0] != link {
		t.Errorf("provenance = %v", res.Answers[0].Used)
	}
}

func TestFederatedReverseDirectionLink(t *testing.T) {
	f, link := motivatingFederation(t)
	// Start from the NYT side: what awards does the subject of article1 hold?
	res, err := f.Execute(`SELECT ?award WHERE {
		<` + nyt + `article1> <` + nyo + `about> ?who .
		?who <` + dbo + `award> ?award .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["award"].Value != "NBA MVP 2013" {
		t.Fatalf("answers = %v", res.Answers)
	}
	if len(res.Answers[0].Used) != 1 || res.Answers[0].Used[0] != link {
		t.Errorf("provenance = %v", res.Answers[0].Used)
	}
}

func TestFederatedDistinctAndLimit(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT DISTINCT ?player WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Errorf("distinct answers = %d, want 1", len(res.Answers))
	}
	res, err = f.Execute(`SELECT ?article WHERE {
		?player <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?player .
	} ORDER BY ?article LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["article"].Value != nyt+"article1" {
		t.Errorf("limited answers = %v", res.Answers)
	}
}

func TestFederatedFilter(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?p ?a WHERE {
		?p <` + dbo + `award> ?a . FILTER(CONTAINS(?a, "2014"))
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Binding["p"].Value != dbp+"Kevin_Durant" {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestFederatedOptionalAndUnion(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(`SELECT ?p ?label WHERE {
		?p <` + dbo + `award> ?a .
		OPTIONAL { ?p <` + rdf.RDFSLabel + `> ?label }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	labeled := 0
	for _, a := range res.Answers {
		if _, ok := a.Binding["label"]; ok {
			labeled++
		}
	}
	if labeled != 1 {
		t.Errorf("labeled = %d, want 1", labeled)
	}

	res, err = f.Execute(`SELECT ?x WHERE {
		{ ?x <` + dbo + `award> "NBA MVP 2013" } UNION { ?x <` + dbo + `award> "NBA MVP 2014" }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Errorf("union answers = %d, want 2", len(res.Answers))
	}
}

func TestFederatedParseError(t *testing.T) {
	f, _ := motivatingFederation(t)
	if _, err := f.Execute(`SELECT WHERE`); err == nil {
		t.Error("expected parse error")
	}
}

func TestSelectSources(t *testing.T) {
	f, _ := motivatingFederation(t)
	aboutPattern := sparql.TriplePattern{
		S: sparql.VarNode("a"),
		P: sparql.TermNode(rdf.NewIRI(nyo + "about")),
		O: sparql.VarNode("w"),
	}
	es := newEvalState(context.Background())
	srcs, err := f.selectSources(es, aboutPattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 || srcs[0].Name() != "nytimes" {
		t.Errorf("sources for nyt:about = %v", names(srcs))
	}
	varPred := sparql.TriplePattern{S: sparql.VarNode("s"), P: sparql.VarNode("p"), O: sparql.VarNode("o")}
	if got, err := f.selectSources(es, varPred); err != nil || len(got) != 2 {
		t.Errorf("sources for variable predicate = %d (err %v), want 2", len(got), err)
	}
	unknown := sparql.TriplePattern{
		S: sparql.VarNode("s"),
		P: sparql.TermNode(rdf.NewIRI("http://never/seen")),
		O: sparql.VarNode("o"),
	}
	if got, err := f.selectSources(es, unknown); err != nil || len(got) != 0 {
		t.Errorf("sources for unknown predicate = %d (err %v), want 0", len(got), err)
	}
}

func names(ss []Source) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}

func TestFederationAccessors(t *testing.T) {
	f, _ := motivatingFederation(t)
	if f.Dict() == nil || len(f.Stores()) != 2 || f.Links().Len() != 1 {
		t.Error("accessors inconsistent")
	}
}
