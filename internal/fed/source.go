package fed

import (
	"context"

	"alex/internal/endpoint"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/store"
)

// Source is one member of a federation: a queryable triple collection. The
// in-process implementation wraps a store; the remote implementation wraps
// an HTTP SPARQL endpoint (internal/endpoint), turning the federation into
// the distributed setting the paper's architecture assumes.
// Every method takes a context so per-query deadlines and cancellation
// reach the wire (remote sources issue HTTP requests); in-process sources
// may ignore it.
type Source interface {
	// Name identifies the source in plans and diagnostics.
	Name() string
	// HasPredicate reports whether the source can answer patterns with
	// the predicate — FedX's ASK-style source-selection probe.
	HasPredicate(ctx context.Context, pred rdf.Term) (bool, error)
	// PredicateCount estimates the number of triples carrying the
	// predicate, for the join optimizer's cost model.
	PredicateCount(ctx context.Context, pred rdf.Term) (int, error)
	// Size is the source's total triple count.
	Size(ctx context.Context) (int, error)
	// Match extends binding through one triple pattern, returning the
	// extended bindings.
	Match(ctx context.Context, tp sparql.TriplePattern, binding sparql.Binding) ([]sparql.Binding, error)
}

// SubstMatcher is an optional Source capability: matching with the
// subject and/or object position overridden by an already-resolved
// dictionary id. The federation uses it for sameAs rewriting — the
// equivalence closure stores alias ids, so a source that shares the
// federation's dictionary can match the alias without a term round trip.
type SubstMatcher interface {
	// SubstDict returns the dictionary whose ids MatchSubst accepts. The
	// federation only takes this path when it is identical (same pointer)
	// to its own shared dictionary.
	SubstDict() *rdf.Dict
	// MatchSubst is Match with the subject and/or object overridden by a
	// resolved id (rdf.NoTerm means no override). An overridden position
	// matches the id without binding any pattern variable there.
	MatchSubst(ctx context.Context, tp sparql.TriplePattern, binding sparql.Binding, sSubst, oSubst rdf.TermID) ([]sparql.Binding, error)
}

// BatchMatcher is an optional Source capability: a per-batch compiled
// matcher for one triple pattern. Bound joins call the same pattern once
// per input row; a compiled matcher resolves the pattern's constants once
// and memoizes bound-term lookups across the whole batch. The returned
// function is not safe for concurrent use, so the federation only uses it
// on the serial bound-join path.
type BatchMatcher interface {
	BatchMatcher(tp sparql.TriplePattern) func(sparql.Binding) []sparql.Binding
}

// localSource adapts an in-process store.
type localSource struct {
	st *store.Store
}

// LocalSource wraps a store as a federation Source.
func LocalSource(st *store.Store) Source { return localSource{st: st} }

func (s localSource) Name() string { return s.st.Name() }

func (s localSource) HasPredicate(_ context.Context, pred rdf.Term) (bool, error) {
	id, ok := s.st.Dict().Lookup(pred)
	if !ok {
		return false, nil
	}
	return s.st.HasPredicate(id), nil
}

func (s localSource) PredicateCount(_ context.Context, pred rdf.Term) (int, error) {
	id, ok := s.st.Dict().Lookup(pred)
	if !ok {
		return 0, nil
	}
	return s.st.PredicateCount(id), nil
}

func (s localSource) Size(context.Context) (int, error) { return s.st.Len(), nil }

func (s localSource) Match(_ context.Context, tp sparql.TriplePattern, binding sparql.Binding) ([]sparql.Binding, error) {
	return sparql.MatchPattern(s.st, tp, binding), nil
}

func (s localSource) SubstDict() *rdf.Dict { return s.st.Dict() }

// Generation exposes the backing store's mutation counter, making every
// local source a GenerationSource for Federation.DataGeneration.
func (s localSource) Generation() uint64 { return s.st.Generation() }

func (s localSource) MatchSubst(_ context.Context, tp sparql.TriplePattern, binding sparql.Binding, sSubst, oSubst rdf.TermID) ([]sparql.Binding, error) {
	return sparql.MatchPatternSubst(s.st, tp, binding, sSubst, oSubst), nil
}

func (s localSource) BatchMatcher(tp sparql.TriplePattern) func(sparql.Binding) []sparql.Binding {
	return sparql.NewPatternMatcher(s.st, tp).Match
}

// EndpointQueryFunc adapts the federation as an endpoint.QueryFunc, so a
// whole federation can itself be served as a SPARQL endpoint with
// endpoint.NewQueryHandler — hierarchical federation. Link provenance is
// not representable in the SPARQL results format and is dropped.
func EndpointQueryFunc(f *Federation) endpoint.QueryFunc {
	return func(ctx context.Context, query string) (*endpoint.Result, error) {
		q, err := sparql.Parse(query)
		if err != nil {
			return nil, &endpoint.BadQueryError{Err: err}
		}
		res, err := f.EvalContext(ctx, q)
		if err != nil {
			return nil, err
		}
		return toEndpointResult(q, res), nil
	}
}

// CachedEndpointQueryFunc is EndpointQueryFunc with a query cache in
// front: prepared forms are reused across spellings of one query, and —
// because cache is expected to be built over f.DataGeneration — whole
// sameAs-expanded answer sets are served from the result cache until any
// member store mutates or the link set is swapped. A nil cache degrades
// to the uncached behaviour.
func CachedEndpointQueryFunc(f *Federation, cache *endpoint.QueryCache) endpoint.QueryFunc {
	return func(ctx context.Context, query string) (*endpoint.Result, error) {
		return cache.Do(query, func(prep *sparql.Prepared) (*endpoint.Result, error) {
			q := prep.Query()
			res, err := f.EvalContext(ctx, q)
			if err != nil {
				return nil, err
			}
			return toEndpointResult(q, res), nil
		})
	}
}

// toEndpointResult converts a federated result to the endpoint's wire
// shape. Link provenance is not representable in the SPARQL results
// format and is dropped.
func toEndpointResult(q *sparql.Query, res *Result) *endpoint.Result {
	out := &endpoint.Result{Triples: res.Triples}
	if q.Ask {
		out.IsAsk = true
		out.Boolean = res.AskResult()
		return out
	}
	out.Vars = res.Vars
	for _, a := range res.Answers {
		out.Rows = append(out.Rows, a.Binding)
	}
	return out
}

// EndpointTraceFunc adapts the federation as an endpoint.TraceFunc, backing
// the /debug/trace route of a served federation (see EndpointQueryFunc for
// the plain query adapter).
func EndpointTraceFunc(f *Federation) endpoint.TraceFunc {
	return func(ctx context.Context, query string) (*endpoint.Result, *obs.Trace, error) {
		q, err := sparql.Parse(query)
		if err != nil {
			return nil, nil, &endpoint.BadQueryError{Err: err}
		}
		tr := obs.NewTrace("query")
		res, err := f.EvalTraceContext(ctx, q, tr)
		if err != nil {
			return nil, tr, err
		}
		out := &endpoint.Result{Triples: res.Triples}
		if q.Ask {
			out.IsAsk = true
			out.Boolean = res.AskResult()
			return out, tr, nil
		}
		out.Vars = res.Vars
		for _, a := range res.Answers {
			out.Rows = append(out.Rows, a.Binding)
		}
		return out, tr, nil
	}
}

// remoteSource adapts an HTTP SPARQL endpoint client.
type remoteSource struct {
	c *endpoint.Client
}

// RemoteSource wraps an endpoint client as a federation Source.
func RemoteSource(c *endpoint.Client) Source { return remoteSource{c: c} }

func (s remoteSource) Name() string { return s.c.Name() }

func (s remoteSource) HasPredicate(ctx context.Context, pred rdf.Term) (bool, error) {
	return s.c.HasPredicateContext(ctx, pred)
}

func (s remoteSource) PredicateCount(ctx context.Context, pred rdf.Term) (int, error) {
	return s.c.PredicateCountContext(ctx, pred)
}

func (s remoteSource) Size(ctx context.Context) (int, error) { return s.c.SizeContext(ctx) }

func (s remoteSource) Match(ctx context.Context, tp sparql.TriplePattern, binding sparql.Binding) ([]sparql.Binding, error) {
	return s.c.MatchPatternContext(ctx, tp, binding)
}
