package fed

import (
	"strings"
	"testing"

	"alex/internal/obs"
)

// motivatingQuery is the introduction example: articles about the 2013 NBA
// MVP, answerable only through the sameAs link.
const motivatingQuery = `SELECT ?article WHERE {
	?player <` + dbo + `award> "NBA MVP 2013" .
	?article <` + nyo + `about> ?player .
}`

// TestObsFederatedQuery runs the motivating example with an observer
// attached and checks that the metrics and the span tree describe what the
// engine actually did: source-selection probes, bound-join batches, a
// sameAs rewrite, and per-pattern cardinalities.
func TestObsFederatedQuery(t *testing.T) {
	f, _ := motivatingFederation(t)
	reg := obs.NewRegistry()
	f.SetObserver(reg)

	res, tr, err := f.ExecuteTrace(motivatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}

	snap := reg.Snapshot()
	if got := snap.Counters["fed.queries"]; got != 1 {
		t.Errorf("fed.queries = %d, want 1", got)
	}
	// Source selection probes every source per pattern: 2 patterns x 2
	// sources.
	if got := snap.Counters["fed.source_probes"]; got != 4 {
		t.Errorf("fed.source_probes = %d, want 4", got)
	}
	// The second pattern only matches through the sameAs link, so at least
	// one rewrite must have fired and produced rows.
	if snap.Counters["fed.sameas.rewrites"] == 0 {
		t.Error("fed.sameas.rewrites = 0, want > 0")
	}
	if snap.Counters["fed.sameas.rows"] == 0 {
		t.Error("fed.sameas.rows = 0, want > 0")
	}
	// One bound-join batch per planned pattern, and the final two answers
	// must be accounted for in the row counter.
	if snap.Counters["fed.boundjoin.batches"] < 2 {
		t.Errorf("fed.boundjoin.batches = %d, want >= 2", snap.Counters["fed.boundjoin.batches"])
	}
	if snap.Counters["fed.rows"] < 2 {
		t.Errorf("fed.rows = %d, want >= 2", snap.Counters["fed.rows"])
	}
	// Latency instruments must carry observations with sane quantiles.
	q := snap.Histograms["fed.query_ns"]
	if q.Count != 1 || q.P50 <= 0 || q.P99 < q.P50 {
		t.Errorf("fed.query_ns snapshot insane: %+v", q)
	}
	for _, src := range []string{"dbpedia", "nytimes"} {
		h := snap.Histograms["fed.source."+src+".match_ns"]
		if h.Count == 0 || h.P50 <= 0 {
			t.Errorf("fed.source.%s.match_ns has no observations: %+v", src, h)
		}
	}

	// The span tree: a bgp stage with one span per pattern, each naming its
	// sources and carrying join input/output cardinalities.
	bgp := tr.Find("bgp")
	if bgp == nil {
		t.Fatalf("no bgp span in trace:\n%s", tr.String())
	}
	patterns := bgp.FindAll("pattern")
	if len(patterns) != 2 {
		t.Fatalf("pattern spans = %d, want 2:\n%s", len(patterns), tr.String())
	}
	var rewrites int64
	for _, p := range patterns {
		in, ok := p.Int("in")
		if !ok || in < 1 {
			t.Errorf("pattern span missing sane 'in': %s", tr.String())
		}
		out, ok := p.Int("out")
		if !ok || out < 1 {
			t.Errorf("pattern span missing sane 'out': %s", tr.String())
		}
		if src, ok := p.Str("sources"); !ok || src == "" {
			t.Errorf("pattern span missing source names: %s", tr.String())
		}
		if n, ok := p.Int("rewrites"); ok {
			rewrites += n
		}
	}
	if rewrites == 0 {
		t.Errorf("no pattern span recorded sameAs rewrites:\n%s", tr.String())
	}
	// The second pattern joins the first's single row out to two articles.
	last := patterns[len(patterns)-1]
	if in, _ := last.Int("in"); in != 1 {
		t.Errorf("last pattern in = %d, want 1", in)
	}
	if out, _ := last.Int("out"); out != 2 {
		t.Errorf("last pattern out = %d, want 2", out)
	}
	fin := tr.Find("finalize")
	if fin == nil {
		t.Fatalf("no finalize span:\n%s", tr.String())
	}
	if out, _ := fin.Int("out"); out != 2 {
		t.Errorf("finalize out = %d, want 2", out)
	}
	if !strings.Contains(tr.String(), "sources=") {
		t.Errorf("rendered trace lacks source annotations:\n%s", tr.String())
	}
}

// TestObsParallelBoundJoin verifies the instruments stay consistent when
// the bound-join worker pool is active (run with -race to catch data races
// in the worker instrumentation).
func TestObsParallelBoundJoin(t *testing.T) {
	f, _ := motivatingFederation(t)
	reg := obs.NewRegistry()
	f.SetObserver(reg)
	f.SetParallelism(4)

	res, tr, err := f.ExecuteTrace(motivatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	snap := reg.Snapshot()
	if snap.Counters["fed.sameas.rewrites"] == 0 {
		t.Error("parallel path lost the rewrite counter")
	}
	if got := snap.Gauges["fed.workers_busy"]; got != 0 {
		t.Errorf("fed.workers_busy = %d after query, want 0", got)
	}
	if fin := tr.Find("finalize"); fin == nil {
		t.Fatalf("no finalize span:\n%s", tr.String())
	}
}

// TestObsDisabled checks the untraced, unobserved path still works and
// records nothing.
func TestObsDisabled(t *testing.T) {
	f, _ := motivatingFederation(t)
	res, err := f.Execute(motivatingQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
}
