package feedback

import (
	"math"
	"math/rand"
	"testing"

	"alex/internal/linkset"
	"alex/internal/rdf"
)

func truthSet() *linkset.Set {
	s := linkset.New()
	for i := 1; i <= 50; i++ {
		s.Add(linkset.Link{Left: rdf.TermID(i * 10), Right: rdf.TermID(i * 10)})
	}
	return s
}

func TestOraclePerfectFeedback(t *testing.T) {
	truth := truthSet()
	o := NewOracle(truth, 0, rand.New(rand.NewSource(1)))
	if !o.Judge(linkset.Link{Left: 10, Right: 10}) {
		t.Error("truth link rejected")
	}
	if o.Judge(linkset.Link{Left: 10, Right: 20}) {
		t.Error("wrong link approved")
	}
	if o.Judged() != 2 || o.Flipped() != 0 {
		t.Errorf("counters: judged=%d flipped=%d", o.Judged(), o.Flipped())
	}
}

func TestOracleErrorRate(t *testing.T) {
	truth := truthSet()
	o := NewOracle(truth, 0.2, rand.New(rand.NewSource(7)))
	wrong := 0
	const n = 5000
	for i := 0; i < n; i++ {
		l := linkset.Link{Left: 10, Right: 10} // a truth link
		if !o.Judge(l) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if math.Abs(rate-0.2) > 0.03 {
		t.Errorf("observed flip rate %g, want ~0.2", rate)
	}
	if o.Flipped() != wrong {
		t.Errorf("Flipped = %d, observed wrong = %d", o.Flipped(), wrong)
	}
}

func TestOracleJudgeFunc(t *testing.T) {
	truth := truthSet()
	o := NewOracle(truth, 0, rand.New(rand.NewSource(1)))
	var j Judge = o.JudgeFunc()
	if !j(linkset.Link{Left: 10, Right: 10}) {
		t.Error("JudgeFunc lost oracle behavior")
	}
}
