// Package feedback simulates the users of the paper's evaluation (§7.1,
// "Generating Feedback"): a randomly chosen candidate link is compared to
// the ground truth and approved when present, rejected when absent. An
// optional error rate flips a fraction of the verdicts, reproducing the
// incorrect-feedback study of Appendix C.
package feedback

import (
	"math/rand"
	"sync"

	"alex/internal/linkset"
)

// Judge decides whether a link is approved (true) or rejected (false).
// It is the interface the ALEX engine consumes; in production it would be
// backed by real users evaluating federated query answers.
type Judge func(linkset.Link) bool

// Oracle answers feedback requests from a ground-truth link set. It is
// safe for concurrent use: the ALEX engine judges links from one goroutine
// per partition.
type Oracle struct {
	truth *linkset.Set
	// ErrorRate is the probability a verdict is flipped (incorrect
	// feedback, Appendix C). Zero means perfect feedback.
	ErrorRate float64

	mu  sync.Mutex
	rng *rand.Rand
	// Counters for diagnostics.
	judged  int
	flipped int
}

// NewOracle returns an oracle over truth using rng for error injection.
func NewOracle(truth *linkset.Set, errorRate float64, rng *rand.Rand) *Oracle {
	return &Oracle{truth: truth, ErrorRate: errorRate, rng: rng}
}

// Judge implements the feedback protocol: approve links present in the
// ground truth, reject others, flipping the verdict with ErrorRate.
func (o *Oracle) Judge(l linkset.Link) bool {
	v := o.truth.Contains(l)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.judged++
	if o.ErrorRate > 0 && o.rng.Float64() < o.ErrorRate {
		o.flipped++
		return !v
	}
	return v
}

// Judged returns the number of verdicts given.
func (o *Oracle) Judged() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.judged
}

// Flipped returns the number of deliberately incorrect verdicts.
func (o *Oracle) Flipped() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.flipped
}

// JudgeFunc adapts the oracle to the Judge function type.
func (o *Oracle) JudgeFunc() Judge { return o.Judge }
