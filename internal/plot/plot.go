// Package plot renders line charts as standalone SVG documents using only
// the standard library. The experiment harness uses it to regenerate the
// paper's figures as actual images: precision/recall/F-measure per episode,
// in the visual shape of Figs 2-4 and 6-11.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one polyline.
type Series struct {
	Name string
	Y    []float64
	// Color is any SVG color; empty picks from the default palette.
	Color string
}

// Chart is a line chart over a shared integer X axis (0, 1, 2, ...).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMin/YMax fix the Y range; both zero means auto-scale.
	YMin, YMax float64
	// Width and Height are the canvas size in pixels; zero means 640×400.
	Width, Height int
	// Markers draws vertical dashed rules at these X positions with labels
	// (used for the paper's relaxed-convergence line).
	Markers map[int]string
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

const (
	marginLeft   = 56.0
	marginRight  = 16.0
	marginTop    = 36.0
	marginBottom = 48.0
)

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 400
	}
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom

	maxLen := 1
	for _, s := range c.Series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	yMin, yMax := c.YMin, c.YMax
	if yMin == 0 && yMax == 0 {
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Y {
				yMin = math.Min(yMin, v)
				yMax = math.Max(yMax, v)
			}
		}
		if math.IsInf(yMin, 1) {
			yMin, yMax = 0, 1
		}
		if yMin == yMax {
			yMax = yMin + 1
		}
		// Pad 5%.
		pad := (yMax - yMin) * 0.05
		yMin -= pad
		yMax += pad
	}

	x := func(i int) float64 {
		if maxLen == 1 {
			return marginLeft + plotW/2
		}
		return marginLeft + plotW*float64(i)/float64(maxLen-1)
	}
	y := func(v float64) float64 {
		return marginTop + plotH*(1-(v-yMin)/(yMax-yMin))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="20" font-size="14" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%g" y="%d" font-size="11" text-anchor="middle">%s</text>`,
		marginLeft+plotW/2, h-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" font-size="11" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Y grid and ticks: 5 divisions.
	for i := 0; i <= 5; i++ {
		v := yMin + (yMax-yMin)*float64(i)/5
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`,
			marginLeft, yy, marginLeft+plotW, yy)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10" text-anchor="end">%.2f</text>`,
			marginLeft-6, yy+3, v)
	}
	// X ticks: at most 10.
	step := 1
	if maxLen > 10 {
		step = (maxLen + 9) / 10
	}
	for i := 0; i < maxLen; i += step {
		xx := x(i)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`,
			xx, marginTop, xx, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10" text-anchor="middle">%d</text>`,
			xx, marginTop+plotH+14, i)
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Markers.
	for xi, label := range c.Markers {
		if xi < 0 || xi >= maxLen {
			continue
		}
		xx := x(xi)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="green" stroke-dasharray="4 3"/>`,
			xx, marginTop, xx, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="9" fill="green">%s</text>`,
			xx+3, marginTop+10, escape(label))
	}

	// Series.
	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = palette[si%len(palette)]
		}
		var pts []string
		for i, v := range s.Y {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(clamp(v, yMin, yMax))))
		}
		if len(pts) == 1 {
			fmt.Fprintf(&b, `<circle cx="%s" r="3" fill="%s"/>`,
				strings.ReplaceAll(pts[0], ",", `" cy="`), color)
		} else if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		lx := marginLeft + 10 + float64(si)*110
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`,
			lx, marginTop+6, lx+18, marginTop+6, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10">%s</text>`,
			lx+22, marginTop+9, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
