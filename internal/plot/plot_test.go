package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
}

func TestChartSVGBasic(t *testing.T) {
	c := &Chart{
		Title:  "Fig 2(a): DBpedia - NYTimes",
		XLabel: "Episode",
		YLabel: "Quality",
		YMin:   0, YMax: 1,
		Series: []Series{
			{Name: "Precision", Y: []float64{0.8, 0.3, 0.5, 0.9}},
			{Name: "Recall", Y: []float64{0.2, 0.6, 0.65, 0.7}},
			{Name: "F-Measure", Y: []float64{0.32, 0.4, 0.56, 0.79}},
		},
		Markers: map[int]string{2: "relaxed"},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	for _, want := range []string{"polyline", "Precision", "Recall", "F-Measure", "relaxed", "Episode", "<svg"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Errorf("polylines = %d, want 3", got)
	}
}

func TestChartAutoScale(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "x", Y: []float64{10, 20, 30}}}}
	wellFormed(t, c.SVG())
	// Auto-scale must include tick labels spanning the data range.
	svg := c.SVG()
	if !strings.Contains(svg, "30.") && !strings.Contains(svg, "31.") {
		t.Errorf("auto-scaled ticks missing upper range:\n%s", svg)
	}
}

func TestChartEdgeCases(t *testing.T) {
	// Empty chart must not panic or divide by zero.
	empty := &Chart{Title: "empty"}
	wellFormed(t, empty.SVG())
	// Single point becomes a circle.
	single := &Chart{Series: []Series{{Name: "pt", Y: []float64{0.5}}}}
	svg := single.SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "<circle") {
		t.Errorf("single-point series not drawn as circle:\n%s", svg)
	}
	// Constant series: the y range must still be nonzero.
	flat := &Chart{Series: []Series{{Name: "flat", Y: []float64{2, 2, 2}}}}
	wellFormed(t, flat.SVG())
	// Values outside fixed range are clamped.
	clamped := &Chart{YMin: 0, YMax: 1, Series: []Series{{Name: "c", Y: []float64{-5, 7}}}}
	wellFormed(t, clamped.SVG())
}

func TestChartEscaping(t *testing.T) {
	c := &Chart{
		Title:  `<Tricky> & "Title"`,
		Series: []Series{{Name: "a<b", Y: []float64{1, 2}}},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "<Tricky>") {
		t.Error("title not escaped")
	}
}

func TestChartManyEpisodeTicks(t *testing.T) {
	y := make([]float64, 100)
	for i := range y {
		y[i] = float64(i) / 100
	}
	c := &Chart{Series: []Series{{Name: "long", Y: y}}}
	svg := c.SVG()
	wellFormed(t, svg)
	// At most ~10 X tick labels even for 100 points.
	if got := strings.Count(svg, `text-anchor="middle">9`); got > 3 {
		t.Errorf("too many tick labels: %d", got)
	}
}
