module alex

go 1.22
