package alex

import (
	"bytes"
	"strings"
	"testing"
)

const (
	dbo = "http://db.example/ontology/"
	dbr = "http://db.example/resource/"
	nyo = "http://nyt.example/ontology/"
	nyr = "http://nyt.example/id/"
)

// buildSession assembles the paper's motivating example: DBpedia knows the
// NBA MVP of 2013, the New York Times has the articles.
func buildSession(t *testing.T) (*Workspace, *Session) {
	t.Helper()
	ws := NewWorkspace()
	db := ws.NewDataset("dbpedia")
	ny := ws.NewDataset("nytimes")

	db.Add(Triple{S: IRI(dbr + "LeBron_James"), P: IRI(dbo + "award"), O: String("NBA MVP 2013")})
	db.Add(Triple{S: IRI(dbr + "LeBron_James"), P: IRI(dbo + "label"), O: String("LeBron James")})
	db.Add(Triple{S: IRI(dbr + "LeBron_James"), P: IRI(dbo + "birthDate"), O: String("1984-12-30")})
	db.Add(Triple{S: IRI(dbr + "Kevin_Durant"), P: IRI(dbo + "label"), O: String("Kevin Durant")})
	db.Add(Triple{S: IRI(dbr + "Kevin_Durant"), P: IRI(dbo + "birthDate"), O: String("1988-09-29")})

	ny.Add(Triple{S: IRI(nyr + "lebron_per"), P: IRI(nyo + "prefLabel"), O: String("James, LeBron")})
	ny.Add(Triple{S: IRI(nyr + "lebron_per"), P: IRI(nyo + "born"), O: Int(1984)})
	ny.Add(Triple{S: IRI(nyr + "article1"), P: IRI(nyo + "about"), O: IRI(nyr + "lebron_per")})
	ny.Add(Triple{S: IRI(nyr + "article2"), P: IRI(nyo + "about"), O: IRI(nyr + "lebron_per")})

	sess := ws.NewSession(db, ny, Options{Partitions: 1, Seed: 7})
	return ws, sess
}

func TestSessionEndToEnd(t *testing.T) {
	_, sess := buildSession(t)
	// Seed the LeBron link manually (PARIS would need two equality hits).
	n := sess.SeedLinks([]Link{{Left: IRI(dbr + "LeBron_James"), Right: IRI(nyr + "lebron_per")}})
	if n != 1 {
		t.Fatalf("seeded %d links", n)
	}
	res, err := sess.Query(`SELECT ?article WHERE {
		?p <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	if res.Answers[0].UsedLinks() != 1 {
		t.Errorf("UsedLinks = %d, want 1", res.Answers[0].UsedLinks())
	}
	sess.Approve(res.Answers[0])
	changed := sess.EndEpisode()
	t.Logf("episode changed %d links; now %d candidates", changed, len(sess.Links()))
	if len(sess.Links()) == 0 {
		t.Error("no links after approval")
	}
}

func TestSessionRejectRemovesLink(t *testing.T) {
	_, sess := buildSession(t)
	sess.SeedLinks([]Link{{Left: IRI(dbr + "Kevin_Durant"), Right: IRI(nyr + "lebron_per")}})
	res, err := sess.Query(`SELECT ?article WHERE {
		?p <` + dbo + `label> "Kevin Durant" .
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("wrong link produced no answers to reject")
	}
	sess.Reject(res.Answers[0])
	sess.EndEpisode()
	for _, l := range sess.Links() {
		if l.Left.Value == dbr+"Kevin_Durant" {
			t.Error("rejected link survived")
		}
	}
	// After removal, the query returns nothing.
	res, err = sess.Query(`SELECT ?article WHERE {
		?p <` + dbo + `label> "Kevin Durant" .
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("answers after rejection = %d", len(res.Answers))
	}
}

func TestSessionSeedUnknownTermsSkipped(t *testing.T) {
	_, sess := buildSession(t)
	n := sess.SeedLinks([]Link{{Left: IRI("http://never/seen"), Right: IRI(nyr + "lebron_per")}})
	if n != 0 {
		t.Errorf("seeded %d links with unknown IRI", n)
	}
}

func TestLoadDataset(t *testing.T) {
	ws := NewWorkspace()
	nt := `<http://x/s> <http://x/p> "hello" .
<http://x/s> <http://x/q> <http://x/o> .
`
	ds, err := ws.LoadDataset("test", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("Len = %d, want 2", ds.Len())
	}
	if ds.Name() != "test" {
		t.Errorf("Name = %q", ds.Name())
	}
	if ds.Stats() == "" {
		t.Error("empty Stats")
	}
	if _, err := ws.LoadDataset("bad", strings.NewReader("junk\n")); err == nil {
		t.Error("malformed N-Triples loaded without error")
	}
}

func TestTermConstructors(t *testing.T) {
	if !IRI("http://x").IsIRI() {
		t.Error("IRI constructor")
	}
	if !String("s").IsLiteral() {
		t.Error("String constructor")
	}
	if LangString("s", "en").Lang != "en" {
		t.Error("LangString constructor")
	}
	if v, ok := Int(5).AsInt(); !ok || v != 5 {
		t.Error("Int constructor")
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Error("Float constructor")
	}
	if Typed("x", "http://dt").Datatype != "http://dt" {
		t.Error("Typed constructor")
	}
}

func TestSessionRunSimulated(t *testing.T) {
	_, sess := buildSession(t)
	sess.SeedLinks([]Link{
		{Left: IRI(dbr + "LeBron_James"), Right: IRI(nyr + "lebron_per")},
		{Left: IRI(dbr + "Kevin_Durant"), Right: IRI(nyr + "lebron_per")}, // wrong
	})
	episodes := sess.RunSimulated(func(l Link) bool {
		return l.Left.Value == dbr+"LeBron_James"
	}, 20)
	if episodes == 0 {
		t.Fatal("no episodes ran")
	}
	for _, l := range sess.Links() {
		if l.Left.Value == dbr+"Kevin_Durant" {
			t.Error("wrong link survived simulation")
		}
	}
	if !sess.Converged() && episodes < 20 {
		t.Error("stopped early without convergence")
	}
}

func TestLoadDatasetTurtle(t *testing.T) {
	ws := NewWorkspace()
	ttl := `@prefix ex: <http://x/> .
ex:s ex:p "hello", "world" ; a ex:Thing .
`
	ds, err := ws.LoadDatasetTurtle("ttl", strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Errorf("Len = %d, want 3", ds.Len())
	}
	if _, err := ws.LoadDatasetTurtle("bad", strings.NewReader("ex:s ex:p")); err == nil {
		t.Error("malformed Turtle loaded")
	}
}

func TestSessionSeedFromPARIS(t *testing.T) {
	ws := NewWorkspace()
	left := ws.NewDataset("left")
	right := ws.NewDataset("right")
	// Two equality hits (name + year) push the PARIS score past 0.95.
	left.Add(Triple{S: IRI("http://l/a"), P: IRI("http://l/name"), O: String("Unique Name")})
	left.Add(Triple{S: IRI("http://l/a"), P: IRI("http://l/year"), O: String("1984-12-30")})
	right.Add(Triple{S: IRI("http://r/b"), P: IRI("http://r/label"), O: String("unique name")})
	right.Add(Triple{S: IRI("http://r/b"), P: IRI("http://r/born"), O: String("1984-12-30")})
	sess := ws.NewSession(left, right, Options{Partitions: 1, Seed: 1, ParisThreshold: 0.9})
	if n := sess.SeedFromPARIS(); n != 1 {
		t.Fatalf("SeedFromPARIS = %d, want 1", n)
	}
	links := sess.Links()
	if len(links) != 1 || links[0].Left.Value != "http://l/a" {
		t.Errorf("links = %v", links)
	}
}

func TestSessionSaveLoadAndLearnedFeatures(t *testing.T) {
	_, sess := buildSession(t)
	sess.SeedLinks([]Link{{Left: IRI(dbr + "LeBron_James"), Right: IRI(nyr + "lebron_per")}})
	// Give some feedback so there is learned state.
	res, err := sess.Query(`SELECT ?article WHERE {
		?p <` + dbo + `award> "NBA MVP 2013" .
		?article <` + nyo + `about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	sess.Approve(res.Answers[0])
	sess.EndEpisode()

	var buf bytes.Buffer
	if err := sess.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	_, restored := buildSession(t)
	// buildSession creates a fresh workspace; a matching session restores.
	if err := restored.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if len(restored.Links()) != len(sess.Links()) {
		t.Errorf("restored %d links, want %d", len(restored.Links()), len(sess.Links()))
	}
	if err := restored.LoadState(strings.NewReader("junk")); err == nil {
		t.Error("junk state loaded")
	}
	// LearnedFeatures runs (may be empty at this tiny scale).
	_ = sess.LearnedFeatures(1)
}

func TestSessionConflictsAndClasses(t *testing.T) {
	_, sess := buildSession(t)
	sess.SeedLinks([]Link{
		{Left: IRI(dbr + "LeBron_James"), Right: IRI(nyr + "lebron_per")},
		{Left: IRI(dbr + "Kevin_Durant"), Right: IRI(nyr + "lebron_per")}, // conflict on right
	})
	conflicts := sess.Conflicts()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	if conflicts[0].Side != "right" || conflicts[0].Entity.Value != nyr+"lebron_per" {
		t.Errorf("conflict = %+v", conflicts[0])
	}
	if len(conflicts[0].Partners) != 2 {
		t.Errorf("partners = %v", conflicts[0].Partners)
	}
	classes := sess.EquivalenceClasses()
	if len(classes) != 1 || len(classes[0]) != 3 {
		t.Errorf("classes = %v", classes)
	}
}
