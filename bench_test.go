// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact — see DESIGN.md's per-experiment index), plus
// micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute the complete pipeline (generate data →
// PARIS → ALEX to convergence) and report the paper's headline metrics as
// custom benchmark units (final F-measure, episodes to convergence, links
// discovered) so the series can be read straight off the bench output.
package alex_test

import (
	"io"
	"math/rand"
	"testing"

	"alex/internal/core"
	"alex/internal/datagen"
	"alex/internal/experiment"
	"alex/internal/feature"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/sim"
	"alex/internal/sparql"
	"alex/internal/store"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 42

func batchCfg() core.Config {
	c := core.Defaults()
	c.EpisodeSize = 100
	c.Partitions = 8
	c.Seed = benchSeed
	return c
}

func domainCfg() core.Config {
	c := core.Defaults()
	c.EpisodeSize = 10
	c.Partitions = 2
	c.MaxEpisodes = 60
	c.Seed = benchSeed
	return c
}

// runQuality executes one full pipeline per iteration and reports the
// figure's headline numbers.
func runQuality(b *testing.B, spec datagen.PairSpec, cfg core.Config) {
	b.Helper()
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		res = experiment.Run(experiment.RunConfig{Spec: spec, Core: cfg, Seed: benchSeed})
	}
	b.ReportMetric(res.Final.FMeasure, "final-F")
	b.ReportMetric(res.Final.Recall, "final-R")
	b.ReportMetric(res.Final.Precision, "final-P")
	b.ReportMetric(float64(len(res.Points)), "episodes")
	b.ReportMetric(float64(res.NewCorrect), "new-links")
}

// --- Table 1 ---

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := mustExperiment(b, "table1"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2: batch mode quality ---

func BenchmarkFig2aDBpediaNYTimes(b *testing.B) {
	runQuality(b, datagen.DBpediaNYTimes(1, benchSeed), batchCfg())
}

func BenchmarkFig2bDBpediaDrugbank(b *testing.B) {
	runQuality(b, datagen.DBpediaDrugbank(1, benchSeed), batchCfg())
}

func BenchmarkFig2cDBpediaLexvo(b *testing.B) {
	runQuality(b, datagen.DBpediaLexvo(1, benchSeed), batchCfg())
}

// --- Figure 3: OpenCyc pairs ---

func BenchmarkFig3aOpenCycNYTimes(b *testing.B) {
	runQuality(b, datagen.OpenCycNYTimes(1, benchSeed), batchCfg())
}

func BenchmarkFig3bOpenCycDrugbank(b *testing.B) {
	runQuality(b, datagen.OpenCycDrugbank(1, benchSeed), batchCfg())
}

func BenchmarkFig3cOpenCycLexvo(b *testing.B) {
	runQuality(b, datagen.OpenCycLexvo(1, benchSeed), batchCfg())
}

// --- Figure 4: specific domains ---

func BenchmarkFig4aDBpediaDogfood(b *testing.B) {
	runQuality(b, datagen.DBpediaDogfood(1, benchSeed), domainCfg())
}

func BenchmarkFig4bOpenCycDogfood(b *testing.B) {
	runQuality(b, datagen.OpenCycDogfood(1, benchSeed), domainCfg())
}

func BenchmarkFig4cNBADBpediaNYTimes(b *testing.B) {
	runQuality(b, datagen.NBADBpediaNYTimes(1, benchSeed), domainCfg())
}

func BenchmarkFig4dNBAOpenCycNYTimes(b *testing.B) {
	runQuality(b, datagen.NBAOpenCycNYTimes(1, benchSeed), domainCfg())
}

// --- Figure 5: search-space filtering ---

func BenchmarkFig5SearchSpaceFilter(b *testing.B) {
	pair := datagen.GeneratePair(datagen.DBpediaNYTimes(1, benchSeed))
	parts := feature.Partition(pair.DS1.Subjects(), 8)
	b.ResetTimer()
	var sp *feature.Space
	for i := 0; i < b.N; i++ {
		sp = feature.Build(pair.DS1, parts[0], pair.DS2, feature.DefaultOptions())
	}
	b.ReportMetric(float64(sp.TotalPairs()), "total-pairs")
	b.ReportMetric(float64(sp.Len()), "filtered-pairs")
	b.ReportMetric(100*float64(sp.Len())/float64(sp.TotalPairs()), "filtered-%")
}

// --- Figure 6: blacklist ablation ---

func BenchmarkFig6Blacklist(b *testing.B) {
	b.Run("with", func(b *testing.B) {
		var res *experiment.Result
		for i := 0; i < b.N; i++ {
			res = experiment.Run(experiment.RunConfig{
				Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: batchCfg(), Seed: benchSeed,
			})
		}
		b.ReportMetric(avgNegShare(res), "avg-neg-%")
		b.ReportMetric(res.Final.FMeasure, "final-F")
	})
	b.Run("without", func(b *testing.B) {
		var res *experiment.Result
		for i := 0; i < b.N; i++ {
			res = experiment.Run(experiment.RunConfig{
				Spec: datagen.DBpediaNYTimes(1, benchSeed),
				Core: batchCfg().DisableBlacklist(), Seed: benchSeed,
			})
		}
		b.ReportMetric(avgNegShare(res), "avg-neg-%")
		b.ReportMetric(res.Final.FMeasure, "final-F")
	})
}

// --- Figure 7: rollback ablation ---

func BenchmarkFig7Rollback(b *testing.B) {
	b.Run("with", func(b *testing.B) {
		var res *experiment.Result
		for i := 0; i < b.N; i++ {
			res = experiment.Run(experiment.RunConfig{
				Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: batchCfg(), Seed: benchSeed,
			})
		}
		b.ReportMetric(res.Final.FMeasure, "final-F")
		b.ReportMetric(float64(len(res.Points)), "episodes")
	})
	b.Run("without", func(b *testing.B) {
		var res *experiment.Result
		for i := 0; i < b.N; i++ {
			res = experiment.Run(experiment.RunConfig{
				Spec: datagen.DBpediaNYTimes(1, benchSeed),
				Core: batchCfg().DisableRollback(), Seed: benchSeed,
			})
		}
		b.ReportMetric(res.Final.FMeasure, "final-F")
		b.ReportMetric(float64(len(res.Points)), "episodes")
	})
}

// --- Figure 8: multi-domain stress test ---

func BenchmarkFig8MultiDomain(b *testing.B) {
	runQuality(b, datagen.DBpediaOpenCyc(1, benchSeed), batchCfg())
}

// --- Figure 9: incorrect feedback ---

func BenchmarkFig9IncorrectFeedback(b *testing.B) {
	for _, tc := range []struct {
		name string
		rate float64
		bl   int
	}{{"clean", 0, 1}, {"err10pct", 0.10, 3}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			// The noisy run uses the noise-tolerant blacklist threshold,
			// matching the fig9 experiment (see Config.BlacklistNegatives).
			cfg.BlacklistNegatives = tc.bl
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg,
					ErrorRate: tc.rate, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(res.Final.Recall, "final-R")
			b.ReportMetric(res.Final.Precision, "final-P")
		})
	}
}

// --- Figure 10: step-size sensitivity ---

func BenchmarkFig10StepSize(b *testing.B) {
	for _, tc := range []struct {
		name string
		step float64
	}{{"0.01", 0.01}, {"0.05", 0.05}, {"0.10", 0.10}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			cfg.StepSize = tc.step
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(res.Final.Recall, "final-R")
			b.ReportMetric(avgNegShare(res), "avg-neg-%")
		})
	}
}

// --- Figure 11: episode-size sensitivity ---

func BenchmarkFig11EpisodeSize(b *testing.B) {
	for _, tc := range []struct {
		name string
		size int
	}{{"50", 50}, {"100", 100}, {"150", 150}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			cfg.EpisodeSize = tc.size
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(float64(len(res.Points)), "episodes")
		})
	}
}

// --- Section 7.3: execution time ---

func BenchmarkTimingBatch(b *testing.B) {
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		res = experiment.Run(experiment.RunConfig{
			Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: batchCfg(), Seed: benchSeed,
		})
	}
	perEpisode := res.Duration.Seconds() / float64(maxInt(1, len(res.Points)))
	b.ReportMetric(perEpisode*1000, "ms/episode")
}

func BenchmarkTimingDomain(b *testing.B) {
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		res = experiment.Run(experiment.RunConfig{
			Spec: datagen.NBADBpediaNYTimes(1, benchSeed), Core: domainCfg(), Seed: benchSeed,
		})
	}
	perEpisode := res.Duration.Seconds() / float64(maxInt(1, len(res.Points)))
	b.ReportMetric(perEpisode*1000, "ms/episode")
}

// --- Substrate micro-benchmarks ---

func BenchmarkStoreMatchBySubject(b *testing.B) {
	pair := datagen.GeneratePair(datagen.DBpediaNYTimes(1, benchSeed))
	subjects := pair.DS1.Subjects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := subjects[i%len(subjects)]
		pair.DS1.Match(s, rdf.NoTerm, rdf.NoTerm)
	}
}

func BenchmarkSPARQLParse(b *testing.B) {
	q := `PREFIX dbo: <http://dbpedia.sim/ontology/>
	SELECT DISTINCT ?p ?t WHERE {
		?p dbo:team ?t ; dbo:position "PG" .
		OPTIONAL { ?p dbo:height ?h }
		FILTER(REGEX(?t, "^[A-Z]") && ?t != "None")
	} ORDER BY ?p LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPARQLExecuteJoin(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	q, err := sparql.Parse(`SELECT ?p ?t WHERE {
		?p <http://dbpedia.sim/ontology/position> "PG" .
		?p <http://dbpedia.sim/ontology/team> ?t .
	}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Eval(pair.DS1, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSlotRows is the slot-engine headline A/B: the same
// two-pattern join through the production slot engine and through the
// legacy map-based engine it replaced. The interesting number is
// allocs/op — late materialization's whole point.
func BenchmarkEvalSlotRows(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	q, err := sparql.Parse(`SELECT ?p ?t WHERE {
		?p <http://dbpedia.sim/ontology/position> "PG" .
		?p <http://dbpedia.sim/ontology/team> ?t .
	}`)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		eval func(*store.Store, *sparql.Query) (*sparql.Result, error)
	}{{"slot", sparql.Eval}, {"compat", sparql.EvalCompat}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tc.eval(pair.DS1, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalPlanOrder measures the single-store selectivity planner: a
// join written worst-pattern-first (an unselective label scan ahead of an
// exact position probe), planned vs written order.
func BenchmarkEvalPlanOrder(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	q, err := sparql.Parse(`SELECT ?p ?t WHERE {
		?p <http://dbpedia.sim/ontology/label> ?anything .
		?p <http://dbpedia.sim/ontology/position> "PG" .
		?p <http://dbpedia.sim/ontology/team> ?t .
	}`)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts sparql.EvalOptions
	}{{"planned", sparql.EvalOptions{}}, {"naive", sparql.EvalOptions{DisablePlan: true}}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.EvalWithOptions(pair.DS1, q, nil, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimilarityStringSim(b *testing.B) {
	pairs := [][2]string{
		{"LeBron James", "James, LeBron"},
		{"University of Waterloo", "Univeristy of Waterloo"},
		{"Global Pacific Media", "Global Pacific Media Group"},
		{"completely different", "nothing alike here"},
	}
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sim.StringSim(p[0], p[1])
	}
}

func BenchmarkParisLink(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paris.Link(pair.DS1, pair.DS2, paris.DefaultConfig())
	}
}

func BenchmarkFeatureSpaceBuild(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	subjects := pair.DS1.Subjects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feature.Build(pair.DS1, subjects, pair.DS2, feature.DefaultOptions())
	}
}

// BenchmarkSpaceRebuild is the from-scratch baseline of the incremental-
// maintenance pair: the cost of absorbing one subject change by rebuilding
// the whole feature space, the only option before delta maintenance.
func BenchmarkSpaceRebuild(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	subjects := pair.DS1.Subjects()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feature.Build(pair.DS1, subjects, pair.DS2, feature.DefaultOptions())
	}
}

// BenchmarkSpaceUpsert measures absorbing one subject change through the
// delta path: rescore only the touched pairs and splice the per-feature
// indexes in place. Pinned by the CI bench gate together with
// BenchmarkSpaceRebuild — their ratio is the streaming headline (target
// ≥10× on this corpus).
func BenchmarkSpaceUpsert(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	subjects := pair.DS1.Subjects()
	sp := feature.Build(pair.DS1, subjects, pair.DS2, feature.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.UpsertSubject(pair.DS1, subjects[i%len(subjects)], pair.DS2)
	}
}

func BenchmarkFeatureExplore(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	sp := feature.Build(pair.DS1, pair.DS1.Subjects(), pair.DS2, feature.DefaultOptions())
	feats := sp.Features()
	rng := rand.New(rand.NewSource(benchSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := feats[i%len(feats)]
		v := rng.Float64()
		sp.ExploreN(f, v, 0.05, 400)
	}
}

func BenchmarkEngineEpisode(b *testing.B) {
	pair := datagen.GeneratePair(datagen.NBADBpediaNYTimes(1, benchSeed))
	scored := paris.Link(pair.DS1, pair.DS2, paris.DefaultConfig())
	links := make([]linkset.Link, len(scored))
	for i, s := range scored {
		links[i] = s.Link
	}
	cfg := domainCfg()
	cfg.MaxEpisodes = 1 << 30 // never converge by cap within the bench
	engine := core.New(pair.DS1, pair.DS2, cfg)
	engine.SetInitialLinks(links)
	judge := func(l linkset.Link) bool { return pair.Truth.Contains(l) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.RunEpisode(judge)
	}
}

// --- helpers ---

func mustExperiment(b *testing.B, id string) error {
	b.Helper()
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	return e.Run(io.Discard, experiment.Options{Seed: benchSeed})
}

func avgNegShare(res *experiment.Result) float64 {
	if len(res.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range res.Points {
		sum += p.NegShare
	}
	return 100 * sum / float64(len(res.Points))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Design-choice ablations (see DESIGN.md) ---

// BenchmarkAblationFeaturePrior measures the cross-state feature-
// distinctiveness prior: without it the engine is the paper's literal
// per-state learner and must rediscover indistinct features at every state.
func BenchmarkAblationFeaturePrior(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"with", false}, {"without", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			if tc.disable {
				cfg = cfg.DisableFeaturePrior()
			}
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(float64(len(res.Points)), "episodes")
		})
	}
}

// BenchmarkAblationMaxExplored sweeps the per-action exploration bound.
func BenchmarkAblationMaxExplored(b *testing.B) {
	for _, tc := range []struct {
		name string
		cap  int
	}{{"100", 100}, {"400", 400}, {"unlimited", -1}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			cfg.MaxExplored = tc.cap
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(res.Final.Recall, "final-R")
			b.ReportMetric(float64(len(res.Points)), "episodes")
		})
	}
}

// BenchmarkAblationEpsilon sweeps the exploration rate of the policy.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, tc := range []struct {
		name string
		eps  float64
	}{{"0.05", 0.05}, {"0.10", 0.10}, {"0.20", 0.20}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			cfg.Epsilon = tc.eps
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(float64(len(res.Points)), "episodes")
		})
	}
}

// BenchmarkFedJoinReorder measures the federated optimizer: a query written
// worst-pattern-first, with and without selectivity reordering.
func BenchmarkFedJoinReorder(b *testing.B) {
	pair := datagen.GeneratePair(datagen.DBpediaNYTimes(0.5, benchSeed))
	query := `SELECT ?p ?name WHERE {
		?p <http://dbpedia.sim/ontology/label> ?anything .
		?p <http://nytimes.sim/ontology/prefLabel> ?name .
		?p <http://dbpedia.sim/ontology/position> "PG" .
	}`
	for _, tc := range []struct {
		name    string
		reorder bool
	}{{"reordered", true}, {"naive", false}} {
		b.Run(tc.name, func(b *testing.B) {
			federation := fed.New(pair.Dict, pair.DS1, pair.DS2)
			federation.SetLinks(pair.Truth)
			if !tc.reorder {
				federation.DisableReorder()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := federation.Execute(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFedQueryEndToEnd is the federated hot path end to end: a
// cross-data-set join on the default (serial, reordered) configuration,
// exercising bound joins through the compiled batch matchers and sameAs
// rewriting through the id-level substitution path.
func BenchmarkFedQueryEndToEnd(b *testing.B) {
	pair := datagen.GeneratePair(datagen.DBpediaNYTimes(0.5, benchSeed))
	federation := fed.New(pair.Dict, pair.DS1, pair.DS2)
	federation.SetLinks(pair.Truth)
	query := `SELECT ?p ?name WHERE {
		?p <http://dbpedia.sim/ontology/position> "PG" .
		?p <http://nytimes.sim/ontology/prefLabel> ?name .
	}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := federation.Execute(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPolicy compares the paper's ε-greedy policy against
// Boltzmann (softmax) action selection.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy string
	}{{"egreedy", "egreedy"}, {"softmax", "softmax"}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := batchCfg()
			cfg.Policy = tc.policy
			cfg.Temperature = 0.4
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = experiment.Run(experiment.RunConfig{
					Spec: datagen.DBpediaNYTimes(1, benchSeed), Core: cfg, Seed: benchSeed,
				})
			}
			b.ReportMetric(res.Final.FMeasure, "final-F")
			b.ReportMetric(res.Final.Recall, "final-R")
			b.ReportMetric(float64(len(res.Points)), "episodes")
		})
	}
}
