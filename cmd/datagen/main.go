// Command datagen materializes one of the synthetic linked-data scenarios
// as N-Triples files plus a ground-truth sameAs link file, so the data the
// experiments run on can be inspected, diffed or loaded into other tools
// (including cmd/fedsparql).
//
// Usage:
//
//	datagen -list
//	datagen -scenario dbpedia-nytimes -out /tmp/data
//	datagen -scenario nba-dbpedia-nytimes -scale 0.5 -seed 7 -out .
//
// Three files are written to -out: <ds1>.nt, <ds2>.nt and truth.nt (the
// ground-truth owl:sameAs statements).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"alex/internal/datagen"
	"alex/internal/rdf"
	"alex/internal/store"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "scenario id (see -list)")
		list     = flag.Bool("list", false, "list scenarios")
		scale    = flag.Float64("scale", 1, "data-set size multiplier")
		seed     = flag.Int64("seed", 42, "random seed")
		out      = flag.String("out", ".", "output directory")
		format   = flag.String("format", "nt", "output format: nt (N-Triples) or ttl (Turtle)")
	)
	flag.Parse()

	if *list || *scenario == "" {
		fmt.Println("scenarios:")
		for _, s := range datagen.Scenarios {
			fmt.Printf("  %-22s %s\n", s.ID, s.Desc)
		}
		if *scenario == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: datagen -scenario <id> [-out dir]")
			os.Exit(2)
		}
		return
	}

	sc, ok := datagen.ScenarioByID(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "datagen: unknown scenario %q (try -list)\n", *scenario)
		os.Exit(2)
	}
	if *format != "nt" && *format != "ttl" {
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q\n", *format)
		os.Exit(2)
	}
	pair := datagen.GeneratePair(sc.Spec(*scale, *seed))
	if err := writeStore(*out, pair.DS1, *format); err != nil {
		fatal(err)
	}
	if err := writeStore(*out, pair.DS2, *format); err != nil {
		fatal(err)
	}
	if err := writeTruth(*out, pair); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d triples), %s (%d triples), truth.nt (%d links) to %s\n",
		fileNameExt(pair.DS1, *format), pair.DS1.Len(), fileNameExt(pair.DS2, *format), pair.DS2.Len(),
		pair.Truth.Len(), *out)
}

func fileNameExt(s *store.Store, ext string) string {
	return strings.ToLower(strings.ReplaceAll(s.Name(), " ", "_")) + "." + ext
}

func writeStore(dir string, s *store.Store, format string) error {
	f, err := os.Create(filepath.Join(dir, fileNameExt(s, format)))
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "ttl" {
		w := rdf.NewTurtleWriter(f, turtlePrefixes(s))
		for _, t := range s.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm) {
			w.Write(s.Dict().Materialize(t))
		}
		return w.Flush()
	}
	w := rdf.NewWriter(f)
	for _, t := range s.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm) {
		if err := w.Write(s.Dict().Materialize(t)); err != nil {
			return err
		}
	}
	return w.Flush()
}

// turtlePrefixes derives prefix declarations from the most common IRI
// namespaces in the store (split at the last '/' or '#').
func turtlePrefixes(s *store.Store) map[string]string {
	counts := map[string]int{}
	note := func(t rdf.Term) {
		if !t.IsIRI() {
			return
		}
		v := t.Value
		cut := strings.LastIndexByte(v, '/')
		if h := strings.LastIndexByte(v, '#'); h > cut {
			cut = h
		}
		if cut > 8 { // past "https://"
			counts[v[:cut+1]]++
		}
	}
	for _, tid := range s.Match(rdf.NoTerm, rdf.NoTerm, rdf.NoTerm) {
		t := s.Dict().Materialize(tid)
		note(t.S)
		note(t.P)
		note(t.O)
	}
	type nsCount struct {
		ns string
		n  int
	}
	var all []nsCount
	for ns, n := range counts {
		all = append(all, nsCount{ns, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].ns < all[j].ns
	})
	out := map[string]string{}
	for i, nc := range all {
		if i == 8 {
			break
		}
		out[fmt.Sprintf("ns%d", i+1)] = nc.ns
	}
	return out
}

func writeTruth(dir string, pair *datagen.Pair) error {
	f, err := os.Create(filepath.Join(dir, "truth.nt"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := rdf.NewWriter(f)
	sameAs := rdf.NewIRI(rdf.OWLSameAs)
	for _, l := range pair.Truth.Links() {
		t := rdf.Triple{S: pair.Dict.Term(l.Left), P: sameAs, O: pair.Dict.Term(l.Right)}
		if err := w.Write(t); err != nil {
			return err
		}
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
