package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: alex/internal/store
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLoadNTriples/serial-8         	       1	 127977327 ns/op	  31.14 MB/s
BenchmarkLoadNTriples/serial-8         	       1	 125000000 ns/op	  31.90 MB/s
BenchmarkLoadNTriples/parallel-8       	       1	  61009805 ns/op	  66.48 MB/s
BenchmarkLoadNTriples/parallel-8       	       1	  63009805 ns/op	  64.48 MB/s
BenchmarkMatchIndexed   	 3456789	       345.6 ns/op
BenchmarkMatchIndexed   	 3356789	       351.2 ns/op
PASS
ok  	alex/internal/store	2.416s
`

func TestParseBenchOutput(t *testing.T) {
	got := parseBenchOutput([]byte(sampleOutput))
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	serial := got["BenchmarkLoadNTriples/serial"]
	if len(serial) != 2 || serial[0] != 127977327 || serial[1] != 125000000 {
		t.Errorf("serial samples = %v", serial)
	}
	indexed := got["BenchmarkMatchIndexed"]
	if len(indexed) != 2 || indexed[0] != 345.6 {
		t.Errorf("indexed samples = %v (GOMAXPROCS=1 lines keep their name)", indexed)
	}
}

func TestStripProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-16":       "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub-2":    "BenchmarkFoo/sub",
		"BenchmarkFoo/n=1000-4": "BenchmarkFoo/n=1000",
		"BenchmarkUTF-8Decode":  "BenchmarkUTF-8Decode", // digits then letter: not a procs marker
	}
	for in, want := range cases {
		if got := stripProcsSuffix(in); got != want {
			t.Errorf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	mean, median, stddev := summarize([]float64{10, 20, 30, 40})
	if mean != 25 || median != 25 {
		t.Errorf("mean=%g median=%g, want 25/25", mean, median)
	}
	if want := math.Sqrt(500.0 / 3.0); math.Abs(stddev-want) > 1e-9 {
		t.Errorf("stddev = %g, want %g", stddev, want)
	}
	mean, median, stddev = summarize([]float64{7})
	if mean != 7 || median != 7 || stddev != 0 {
		t.Errorf("single sample: %g/%g/%g", mean, median, stddev)
	}
	if m, _, _ := summarize(nil); m != 0 {
		t.Errorf("empty samples mean = %g", m)
	}
}

func bench(samples ...float64) *Bench {
	b := &Bench{SamplesNS: samples}
	b.MeanNS, b.MedianNS, b.StddevNS = summarize(samples)
	return b
}

func result(benches map[string]*Bench) *Result {
	return &Result{Label: "t", Count: 3, GOMAXPROCS: 1, Benchmarks: benches}
}

func TestCompareVerdicts(t *testing.T) {
	oldRes := result(map[string]*Bench{
		"BenchmarkStable":   bench(100, 101, 99),
		"BenchmarkRegress":  bench(100, 100, 100),
		"BenchmarkNoisy":    bench(100, 200, 300),
		"BenchmarkImproved": bench(1000, 1000, 1000),
		"BenchmarkGone":     bench(50, 50, 50),
	})
	newRes := result(map[string]*Bench{
		"BenchmarkStable":   bench(102, 100, 101),
		"BenchmarkRegress":  bench(150, 150, 150),
		"BenchmarkNoisy":    bench(230, 120, 330), // +13% but way inside noise
		"BenchmarkImproved": bench(500, 500, 500),
		"BenchmarkExtra":    bench(1, 1, 1), // new benchmarks are not judged
	})
	byName := map[string]comparison{}
	for _, c := range compare(oldRes, newRes, 0.10) {
		byName[c.name] = c
	}
	if len(byName) != 5 {
		t.Fatalf("got %d comparisons, want 5", len(byName))
	}
	for name, wantRegressed := range map[string]bool{
		"BenchmarkStable":   false,
		"BenchmarkRegress":  true,
		"BenchmarkNoisy":    false,
		"BenchmarkImproved": false,
		"BenchmarkGone":     true,
	} {
		if c, ok := byName[name]; !ok || c.regressed != wantRegressed {
			t.Errorf("%s: regressed = %v (found %v), want %v", name, c.regressed, ok, wantRegressed)
		}
	}
	if v := byName["BenchmarkImproved"].verdict; v != "improved" {
		t.Errorf("improved verdict = %q", v)
	}
	if v := byName["BenchmarkNoisy"].verdict; v != "slower, within noise" {
		t.Errorf("noisy verdict = %q", v)
	}
}

// TestRunAndCompareEndToEnd drives both subcommands with a canned go test
// transcript, through the real JSON files.
func TestRunAndCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	defer func(orig func(string, string, string, int) ([]byte, error)) { execBench = orig }(execBench)

	runWith := func(transcript, label string) string {
		execBench = func(pkg, benchRE, benchtime string, count int) ([]byte, error) {
			if pkg != "./internal/store" {
				t.Errorf("unexpected package %q", pkg)
			}
			return []byte(transcript), nil
		}
		path := filepath.Join(dir, "BENCH_"+label+".json")
		var stdout, stderr bytes.Buffer
		code := run([]string{"run", "-label", label, "-pkgs", "./internal/store", "-count", "2", "-o", path}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("run exited %d: %s", code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "wrote ") {
			t.Errorf("run stdout = %q", stdout.String())
		}
		return path
	}

	oldPath := runWith(sampleOutput, "old")
	res, err := readResult(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "old" || len(res.Benchmarks) != 3 {
		t.Fatalf("round-tripped result: label=%q benchmarks=%d", res.Label, len(res.Benchmarks))
	}
	if res.Benchmarks["BenchmarkMatchIndexed"].MeanNS != (345.6+351.2)/2 {
		t.Errorf("mean = %g", res.Benchmarks["BenchmarkMatchIndexed"].MeanNS)
	}

	// Identical numbers: the gate passes.
	var stdout, stderr bytes.Buffer
	code := run([]string{"compare", "-old", oldPath, "-new", oldPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-compare exited %d: %s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Errorf("self-compare stdout = %q", stdout.String())
	}

	// Consistent 2x slowdown: the gate fails with exit 1.
	slow := strings.NewReplacer(
		"127977327", "255954654", "125000000", "250000000",
		"61009805", "122019610", "63009805", "126019610",
		"345.6", "691.2", "351.2", "702.4",
	).Replace(sampleOutput)
	newPath := runWith(slow, "new")
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"compare", "-old", oldPath, "-new", newPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("regressed compare exited %d, want 1: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") || !strings.Contains(stdout.String(), "FAIL") {
		t.Errorf("regressed compare stdout = %q", stdout.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"run"},                          // missing -label
		{"compare", "-old", "only.json"}, // missing -new
	} {
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	if code := run([]string{"compare", "-old", "nope.json", "-new", "nope.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing files exit = %d, want 2", code)
	}
}

// TestCompareRejectsInvalidResults locks in the fix for the silent-pass
// bug: an empty, corrupt or zero-mean result file must fail the gate with
// exit 2 and a clear message, not sail through as an "improvement".
func TestCompareRejectsInvalidResults(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	goodJSON := `{"label":"ok","gomaxprocs":4,"benchmarks":{` +
		`"BenchmarkX":{"samples_ns":[100,110],"mean_ns":105,"median_ns":105,"stddev_ns":7}}}`
	if err := os.WriteFile(good, []byte(goodJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name    string
		path    string
		wantMsg string
	}{
		{"empty file", write("empty.json", ""), "is empty"},
		{"whitespace only", write("blank.json", "  \n"), "is empty"},
		{"corrupt JSON", write("corrupt.json", `{"label":"x","benchmarks":{`), "not valid benchmark JSON"},
		{"no benchmarks", write("nobench.json", `{"label":"x","benchmarks":{}}`), "contains no benchmarks"},
		{"null benchmark", write("null.json", `{"benchmarks":{"BenchmarkX":null}}`), "is null"},
		{"no samples", write("nosamples.json",
			`{"benchmarks":{"BenchmarkX":{"samples_ns":[],"mean_ns":105}}}`), "has no samples"},
		{"zero mean", write("zeromean.json",
			`{"benchmarks":{"BenchmarkX":{"samples_ns":[0],"mean_ns":0}}}`), "non-positive mean"},
	}
	for _, tc := range cases {
		for _, side := range []string{"-old", "-new"} {
			t.Run(tc.name+" "+side, func(t *testing.T) {
				args := []string{"compare", "-old", good, "-new", good}
				if side == "-old" {
					args[2] = tc.path
				} else {
					args[4] = tc.path
				}
				var stdout, stderr bytes.Buffer
				code := run(args, &stdout, &stderr)
				if code != 2 {
					t.Fatalf("exit = %d, want 2; stdout=%q stderr=%q", code, stdout.String(), stderr.String())
				}
				if !strings.Contains(stderr.String(), tc.wantMsg) {
					t.Errorf("stderr %q missing %q", stderr.String(), tc.wantMsg)
				}
			})
		}
	}

	// The good file still compares cleanly against itself.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"compare", "-old", good, "-new", good}, &stdout, &stderr); code != 0 {
		t.Fatalf("valid self-compare exit = %d: %s", code, stderr.String())
	}
}
