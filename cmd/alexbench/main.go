// Command alexbench is the repository's benchmark harness: it runs the Go
// benchmark suite several times, condenses the samples into per-benchmark
// mean/median/stddev, writes the result as a JSON document, and compares
// two such documents with a noise-aware regression verdict. CI's
// bench-gate job uses it to fail pull requests that slow the pinned hot
// paths down by more than the allowed threshold.
//
// Usage:
//
//	alexbench run -label <name> [-bench RE] [-count N] [-benchtime D]
//	              [-pkgs p1,p2,...] [-o file]
//	alexbench compare -old A.json -new B.json [-threshold 0.10]
//
// run executes `go test -run ^$ -bench RE -benchtime D -count N` over each
// package and writes BENCH_<label>.json (or -o). compare exits 1 when any
// benchmark regressed — mean slowdown above the threshold AND above twice
// the combined standard error, so single noisy samples do not fail builds
// — and 0 otherwise; both subcommands exit 2 on usage or execution errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runBenchmarks(args[1:], stdout, stderr)
	case "compare":
		return compareFiles(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: alexbench run -label <name> [-bench RE] [-count N] [-benchtime D] [-pkgs p1,p2,...] [-o file]")
	fmt.Fprintln(w, "       alexbench compare -old A.json -new B.json [-threshold 0.10]")
}

// Result is one suite execution: every benchmark's samples and summary
// statistics, plus enough environment detail to make the numbers
// self-describing (a gomaxprocs=1 run must not be compared against a
// 16-core one as if the hardware were equal).
type Result struct {
	Label      string            `json:"label"`
	Go         string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Count      int               `json:"count"`
	Benchtime  string            `json:"benchtime"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// Bench summarizes one benchmark's ns/op samples.
type Bench struct {
	SamplesNS []float64 `json:"samples_ns"`
	MeanNS    float64   `json:"mean_ns"`
	MedianNS  float64   `json:"median_ns"`
	StddevNS  float64   `json:"stddev_ns"`
}

// stderrNS is the standard error of the mean.
func (b *Bench) stderrNS() float64 {
	if len(b.SamplesNS) < 2 {
		return 0
	}
	return b.StddevNS / math.Sqrt(float64(len(b.SamplesNS)))
}

// execBench runs one `go test` benchmark pass over a package and returns
// its combined output. Tests swap it out for a canned transcript.
var execBench = func(pkg, benchRE, benchtime string, count int) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRE, "-benchtime", benchtime, "-count", strconv.Itoa(count), pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return out, fmt.Errorf("go test %s: %w", pkg, err)
	}
	return out, nil
}

func runBenchmarks(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("alexbench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "", "result label (required; output defaults to BENCH_<label>.json)")
	benchRE := fs.String("bench", ".", "benchmark name pattern, as go test -bench")
	count := fs.Int("count", 5, "runs per benchmark")
	benchtime := fs.String("benchtime", "1x", "per-run benchtime, as go test -benchtime")
	pkgs := fs.String("pkgs", ".,./internal/store,./internal/rdf", "comma-separated packages to benchmark")
	out := fs.String("o", "", "output file (default BENCH_<label>.json)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *label == "" || *count < 1 {
		usage(stderr)
		return 2
	}
	res := &Result{
		Label:      *label,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      *count,
		Benchtime:  *benchtime,
		Benchmarks: map[string]*Bench{},
	}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		fmt.Fprintf(stderr, "alexbench: benchmarking %s (count=%d)\n", pkg, *count)
		raw, err := execBench(pkg, *benchRE, *benchtime, *count)
		if err != nil {
			fmt.Fprintf(stderr, "alexbench: %v\n%s", err, raw)
			return 2
		}
		for name, samples := range parseBenchOutput(raw) {
			b := res.Benchmarks[name]
			if b == nil {
				b = &Bench{}
				res.Benchmarks[name] = b
			}
			b.SamplesNS = append(b.SamplesNS, samples...)
		}
	}
	if len(res.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "alexbench: no benchmarks matched %q in %s\n", *benchRE, *pkgs)
		return 2
	}
	for _, b := range res.Benchmarks {
		b.MeanNS, b.MedianNS, b.StddevNS = summarize(b.SamplesNS)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := writeResult(path, res); err != nil {
		fmt.Fprintf(stderr, "alexbench: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks, %d samples each)\n", path, len(res.Benchmarks), *count)
	return 0
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// parseBenchOutput extracts name → ns/op samples from go test -bench
// output. The -<procs> GOMAXPROCS suffix is stripped so results from
// machines with different core counts share benchmark names.
func parseBenchOutput(raw []byte) map[string][]float64 {
	out := map[string][]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		name := stripProcsSuffix(m[1])
		out[name] = append(out[name], ns)
	}
	return out
}

// stripProcsSuffix removes a trailing -<digits> (the GOMAXPROCS marker go
// test appends when running with more than one P).
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if suffix := name[i+1:]; suffix != "" {
		for _, c := range suffix {
			if c < '0' || c > '9' {
				return name
			}
		}
		return name[:i]
	}
	return name
}

// summarize computes mean, median and sample standard deviation.
func summarize(samples []float64) (mean, median, stddev float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		median = sorted[n/2]
	} else {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	if n > 1 {
		var ss float64
		for _, s := range samples {
			d := s - mean
			ss += d * d
		}
		stddev = math.Sqrt(ss / float64(n-1))
	}
	return mean, median, stddev
}

func writeResult(path string, res *Result) error {
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding result: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing result: %w", err)
	}
	return nil
}

// readResult loads and validates a result file. Validation is strict on
// purpose: a zero-byte, corrupt or zero-mean result used to slide through
// comparison as an across-the-board "improvement", silently passing the
// regression gate — exactly when a broken benchmark run most needs to
// fail it.
func readResult(path string) (*Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		return nil, fmt.Errorf("result file %s is empty (did the benchmark run fail?)", path)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("result file %s is not valid benchmark JSON: %w", path, err)
	}
	if len(res.Benchmarks) == 0 {
		return nil, fmt.Errorf("result file %s contains no benchmarks (truncated or wrong file?)", path)
	}
	names := make([]string, 0, len(res.Benchmarks))
	for name := range res.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := res.Benchmarks[name]
		switch {
		case b == nil:
			return nil, fmt.Errorf("result file %s: benchmark %q is null", path, name)
		case len(b.SamplesNS) == 0:
			return nil, fmt.Errorf("result file %s: benchmark %q has no samples", path, name)
		case b.MeanNS <= 0:
			return nil, fmt.Errorf("result file %s: benchmark %q has non-positive mean %g ns", path, name, b.MeanNS)
		}
	}
	return &res, nil
}

// comparison is the verdict on one benchmark.
type comparison struct {
	name      string
	oldMean   float64
	newMean   float64
	delta     float64 // fractional change, + is slower
	verdict   string
	regressed bool
}

// compare judges new against old. A benchmark regresses when its mean
// slowed down by more than threshold AND the slowdown exceeds twice the
// combined standard error of the two means (with zero recorded variance
// the threshold alone decides). Benchmarks present in old but missing
// from new are regressions too: deleting a gated benchmark must not
// silently pass the gate.
func compare(oldRes, newRes *Result, threshold float64) []comparison {
	names := make([]string, 0, len(oldRes.Benchmarks))
	for name := range oldRes.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []comparison
	for _, name := range names {
		ob := oldRes.Benchmarks[name]
		nb := newRes.Benchmarks[name]
		if nb == nil {
			out = append(out, comparison{name: name, oldMean: ob.MeanNS, verdict: "missing from new result", regressed: true})
			continue
		}
		c := comparison{name: name, oldMean: ob.MeanNS, newMean: nb.MeanNS}
		if ob.MeanNS > 0 {
			c.delta = (nb.MeanNS - ob.MeanNS) / ob.MeanNS
		}
		noise := 2 * math.Hypot(ob.stderrNS(), nb.stderrNS())
		slowdown := nb.MeanNS - ob.MeanNS
		switch {
		case c.delta > threshold && (noise == 0 || slowdown > noise):
			c.verdict = "REGRESSION"
			c.regressed = true
		case c.delta > threshold:
			c.verdict = "slower, within noise"
		case c.delta < -threshold:
			c.verdict = "improved"
		default:
			c.verdict = "ok"
		}
		out = append(out, c)
	}
	return out
}

func compareFiles(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("alexbench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline result JSON (required)")
	newPath := fs.String("new", "", "candidate result JSON (required)")
	threshold := fs.Float64("threshold", 0.10, "fractional slowdown treated as a regression")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		usage(stderr)
		return 2
	}
	oldRes, err := readResult(*oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "alexbench: %v\n", err)
		return 2
	}
	newRes, err := readResult(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "alexbench: %v\n", err)
		return 2
	}
	if oldRes.GOMAXPROCS != newRes.GOMAXPROCS {
		fmt.Fprintf(stderr, "alexbench: warning: comparing gomaxprocs=%d against gomaxprocs=%d\n",
			oldRes.GOMAXPROCS, newRes.GOMAXPROCS)
	}
	comps := compare(oldRes, newRes, *threshold)
	if len(comps) == 0 {
		fmt.Fprintf(stderr, "alexbench: baseline %s contains no benchmarks\n", *oldPath)
		return 2
	}
	fmt.Fprintf(stdout, "%-44s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "verdict")
	failed := false
	for _, c := range comps {
		newCol := fmt.Sprintf("%.0f", c.newMean)
		if c.verdict == "missing from new result" {
			newCol = "-"
		}
		fmt.Fprintf(stdout, "%-44s %14.0f %14s %+7.1f%%  %s\n",
			c.name, c.oldMean, newCol, c.delta*100, c.verdict)
		if c.regressed {
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(stdout, "FAIL: benchmark regression above %.0f%% threshold\n", *threshold*100)
		return 1
	}
	fmt.Fprintf(stdout, "PASS: no regression above %.0f%% threshold\n", *threshold*100)
	return 0
}
