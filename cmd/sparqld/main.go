// Command sparqld serves RDF data as a SPARQL-protocol HTTP endpoint — one
// node of a distributed federation (see cmd/fedsparql and internal/fed's
// remote sources). With several -data files (optionally plus -links), the
// node serves a whole federation with owl:sameAs bridging: hierarchical
// federation.
//
// Usage:
//
//	sparqld -data dbpedia.nt -addr :8181
//	sparqld -data dbpedia.nt -data nytimes.nt -links truth.nt -addr :8282
//	curl 'http://localhost:8181/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+3'
//	curl  http://localhost:8181/stats
//	curl  http://localhost:8181/metrics
//	curl 'http://localhost:8181/debug/trace?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+3'
//
// Turtle files (.ttl) are detected by extension. The server speaks the
// SPARQL 1.1 protocol subset implemented in internal/endpoint: SELECT, ASK
// and CONSTRUCT via GET/POST, JSON / N-Triples results.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"alex/internal/endpoint"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/store"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var dataFiles multiFlag
	flag.Var(&dataFiles, "data", "N-Triples or Turtle file to serve (repeatable)")
	linksFile := flag.String("links", "", "owl:sameAs link file (used with multiple -data files)")
	addr := flag.String("addr", ":8181", "listen address")
	flag.Parse()
	if len(dataFiles) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sparqld -data <file.nt|file.ttl> [-data <file2>] [-links <file>] [-addr :8181]")
		os.Exit(2)
	}

	dict := rdf.NewDict()
	reg := obs.NewRegistry()
	var stores []*store.Store
	for _, path := range dataFiles {
		st, err := load(dict, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sparqld:", err)
			os.Exit(1)
		}
		st.SetObserver(reg)
		fmt.Fprintf(os.Stderr, "loaded %s\n", st.Stats())
		stores = append(stores, st)
	}

	var handler *endpoint.Handler
	if len(stores) == 1 && *linksFile == "" {
		handler = endpoint.NewHandler(stores[0])
	} else {
		federation := fed.New(dict, stores...)
		if *linksFile != "" {
			links, err := loadLinks(dict, *linksFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sparqld:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "loaded %d sameAs links\n", links.Len())
			federation.SetLinks(links)
		}
		federation.SetObserver(reg)
		handler = endpoint.NewQueryHandler(fed.EndpointQueryFunc(federation), func() map[string]any {
			out := map[string]any{"sources": len(stores), "links": federation.Links().Len()}
			for _, st := range stores {
				out[st.Name()] = st.Len()
			}
			return out
		})
		handler.SetTraceFunc(fed.EndpointTraceFunc(federation))
		fmt.Fprintf(os.Stderr, "serving a federation of %d sources\n", len(stores))
	}
	handler.SetObserver(reg)
	fmt.Fprintf(os.Stderr, "listening on %s (endpoint %s/sparql)\n", *addr, *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
}

func load(dict *rdf.Dict, path string) (*store.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	st := store.New(name, dict)
	var triples []rdf.Triple
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".ttl" || ext == ".turtle" {
		triples, err = rdf.ParseTurtle(f)
	} else {
		triples, err = rdf.NewReader(f).ReadAll()
	}
	if err != nil {
		return nil, err
	}
	st.Load(triples)
	return st, nil
}

func loadLinks(dict *rdf.Dict, path string) (*linkset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	links := linkset.New()
	for _, t := range triples {
		if t.P.Value == rdf.OWLSameAs {
			links.Add(linkset.Link{Left: dict.Intern(t.S), Right: dict.Intern(t.O)})
		}
	}
	return links, nil
}
