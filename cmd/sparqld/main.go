// Command sparqld serves RDF data as a SPARQL-protocol HTTP endpoint — one
// node of a distributed federation (see cmd/fedsparql and internal/fed's
// remote sources). With several -data files (optionally plus -links), the
// node serves a whole federation with owl:sameAs bridging: hierarchical
// federation.
//
// Usage:
//
//	sparqld -data dbpedia.nt -addr :8181
//	sparqld -data dbpedia.nt -data nytimes.nt -links truth.nt -addr :8282
//	curl 'http://localhost:8181/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+3'
//	curl  http://localhost:8181/stats
//	curl  http://localhost:8181/metrics
//	curl 'http://localhost:8181/debug/trace?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+3'
//
// Turtle files (.ttl) are detected by extension. The server speaks the
// SPARQL 1.1 protocol subset implemented in internal/endpoint: SELECT, ASK
// and CONSTRUCT via GET/POST, JSON / N-Triples results.
//
// When serving a federation, -timeout and -partial-ok install the fed
// fault-tolerance policy (per-source-call timeouts, retries, breakers, and
// graceful degradation); request contexts propagate so a disconnected
// client aborts its query.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alex/internal/endpoint"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/store"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// options are the parsed command-line settings buildHandler consumes.
type options struct {
	dataFiles []string
	linksFile string
	timeout   time.Duration
	retries   int
	partialOK bool
}

func main() {
	fs := flag.NewFlagSet("sparqld", flag.ExitOnError)
	var dataFiles multiFlag
	fs.Var(&dataFiles, "data", "N-Triples or Turtle file to serve (repeatable)")
	linksFile := fs.String("links", "", "owl:sameAs link file (used with multiple -data files)")
	addr := fs.String("addr", ":8181", "listen address")
	timeout := fs.Duration("timeout", 10*time.Second, "per-source-call timeout for federated serving (0 disables)")
	retries := fs.Int("retries", 2, "retries per failed source call for federated serving")
	partialOK := fs.Bool("partial-ok", false, "federated serving tolerates unavailable sources (partial results)")
	_ = fs.Parse(os.Args[1:])
	if len(dataFiles) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sparqld -data <file.nt|file.ttl> [-data <file2>] [-links <file>] [-addr :8181]")
		os.Exit(2)
	}

	handler, err := buildHandler(options{
		dataFiles: dataFiles,
		linksFile: *linksFile,
		timeout:   *timeout,
		retries:   *retries,
		partialOK: *partialOK,
	}, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "listening on %s (endpoint %s/sparql)\n", *addr, *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
}

// buildHandler loads the data and assembles the HTTP handler — everything
// main does short of binding a socket, so tests can serve it with
// httptest. Progress messages go to logw.
func buildHandler(opts options, logw io.Writer) (*endpoint.Handler, error) {
	dict := rdf.NewDict()
	reg := obs.NewRegistry()
	var stores []*store.Store
	for _, path := range opts.dataFiles {
		st, err := load(dict, path, reg)
		if err != nil {
			return nil, err
		}
		st.SetObserver(reg)
		fmt.Fprintf(logw, "loaded %s\n", st.Stats())
		stores = append(stores, st)
	}

	var handler *endpoint.Handler
	if len(stores) == 1 && opts.linksFile == "" {
		handler = endpoint.NewHandler(stores[0])
	} else {
		federation := fed.New(dict, stores...)
		if opts.linksFile != "" {
			links, err := loadLinks(dict, opts.linksFile)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(logw, "loaded %d sameAs links\n", links.Len())
			federation.SetLinks(links)
		}
		res := fed.DefaultResilience()
		res.Timeout = opts.timeout
		res.MaxRetries = opts.retries
		res.PartialResults = opts.partialOK
		federation.SetResilience(res)
		federation.SetObserver(reg)
		handler = endpoint.NewQueryHandler(fed.EndpointQueryFunc(federation), func() map[string]any {
			out := map[string]any{"sources": len(stores), "links": federation.Links().Len()}
			for _, st := range stores {
				out[st.Name()] = st.Len()
			}
			return out
		})
		handler.SetTraceFunc(fed.EndpointTraceFunc(federation))
		fmt.Fprintf(logw, "serving a federation of %d sources\n", len(stores))
	}
	handler.SetObserver(reg)
	return handler, nil
}

func load(dict *rdf.Dict, path string, reg *obs.Registry) (*store.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	st := store.New(name, dict)
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".ttl" || ext == ".turtle" {
		_, err = store.LoadTurtle(st, f, store.LoadOptions{Obs: reg})
	} else {
		_, err = store.LoadNTriples(st, f, store.LoadOptions{Obs: reg})
	}
	if err != nil {
		return nil, err
	}
	return st, nil
}

func loadLinks(dict *rdf.Dict, path string) (*linkset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	links := linkset.New()
	for _, t := range triples {
		if t.P.Value == rdf.OWLSameAs {
			links.Add(linkset.Link{Left: dict.Intern(t.S), Right: dict.Intern(t.O)})
		}
	}
	return links, nil
}
