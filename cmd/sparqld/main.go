// Command sparqld serves RDF data as a SPARQL-protocol HTTP endpoint — one
// node of a distributed federation (see cmd/fedsparql and internal/fed's
// remote sources). With several -data files (optionally plus -links), the
// node serves a whole federation with owl:sameAs bridging: hierarchical
// federation.
//
// Usage:
//
//	sparqld -data dbpedia.nt -addr :8181
//	sparqld -data dbpedia.nt -data nytimes.nt -links truth.nt -addr :8282
//	curl 'http://localhost:8181/sparql?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+3'
//	curl  http://localhost:8181/stats
//	curl  http://localhost:8181/metrics
//	curl 'http://localhost:8181/debug/trace?query=SELECT+?s+WHERE+{?s+?p+?o}+LIMIT+3'
//
// Turtle files (.ttl) are detected by extension. The server speaks the
// SPARQL 1.1 protocol subset implemented in internal/endpoint: SELECT, ASK
// and CONSTRUCT via GET/POST, JSON / N-Triples results.
//
// When serving a federation, -timeout and -partial-ok install the fed
// fault-tolerance policy (per-source-call timeouts, retries, breakers, and
// graceful degradation); request contexts propagate so a disconnected
// client aborts its query.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"alex/internal/core"
	"alex/internal/endpoint"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/store"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// options are the parsed command-line settings buildHandler consumes.
type options struct {
	dataFiles []string
	linksFile string
	timeout   time.Duration
	retries   int
	partialOK bool

	// Durability (internal/store snapshot.go, wal.go, durable.go): when
	// dataDir is set, the single served store runs over a snapshot+WAL
	// pair there — cold starts load the -data file and checkpoint it,
	// restarts recover from disk and skip the parse entirely.
	dataDir       string
	snapshotBytes int64 // WAL size triggering a background checkpoint; 0 = shutdown only
	walFsync      string

	// Serving-at-load settings (internal/endpoint cache.go, admission.go).
	preparedCache int
	resultCache   int
	maxConcurrent int
	maxQueue      int
	perClient     int
	retryAfter    time.Duration

	// Streaming feedback (internal/core stream.go): with -feedback a
	// two-source federation runs a live ALEX engine whose candidate set
	// backs the sameAs links, and POST /feedback feeds it.
	feedback      bool
	feedbackBatch int
	feedbackQueue int
}

func main() {
	fs := flag.NewFlagSet("sparqld", flag.ExitOnError)
	var dataFiles multiFlag
	fs.Var(&dataFiles, "data", "N-Triples or Turtle file to serve (repeatable)")
	linksFile := fs.String("links", "", "owl:sameAs link file (used with multiple -data files)")
	addr := fs.String("addr", ":8181", "listen address")
	timeout := fs.Duration("timeout", 10*time.Second, "per-source-call timeout for federated serving (0 disables)")
	retries := fs.Int("retries", 2, "retries per failed source call for federated serving")
	partialOK := fs.Bool("partial-ok", false, "federated serving tolerates unavailable sources (partial results)")
	preparedCache := fs.Int("prepared-cache", 1024, "prepared-query LRU size in entries (0 disables)")
	resultCache := fs.Int("result-cache", 256, "generation-invalidated result LRU size in entries (0 disables)")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrently executing requests (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "max requests queued for an execution slot; excess shed with 503")
	perClient := fs.Int("per-client", 0, "max concurrent requests per client (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain budget for in-flight requests")
	feedback := fs.Bool("feedback", false, "enable POST /feedback live link exploration (requires exactly two -data files)")
	feedbackBatch := fs.Int("feedback-batch", 64, "feedback items per applied episode batch")
	feedbackQueue := fs.Int("feedback-queue", 1024, "buffered feedback items before shedding")
	dataDir := fs.String("data-dir", "", "durable data directory (snapshot + write-ahead log); restarts recover from it instead of re-parsing -data")
	snapshotBytes := fs.Int64("snapshot", 0, "WAL size in bytes that triggers a background checkpoint (0 = checkpoint only at shutdown)")
	walFsync := fs.String("wal-fsync", "", "WAL fsync policy with -data-dir: batch (default), always, off")
	_ = fs.Parse(os.Args[1:])
	if len(dataFiles) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sparqld -data <file.nt|file.ttl> [-data <file2>] [-links <file>] [-addr :8181]")
		os.Exit(2)
	}

	handler, cleanup, err := buildHandler(options{
		dataFiles:     dataFiles,
		linksFile:     *linksFile,
		timeout:       *timeout,
		retries:       *retries,
		partialOK:     *partialOK,
		preparedCache: *preparedCache,
		resultCache:   *resultCache,
		maxConcurrent: *maxConcurrent,
		maxQueue:      *maxQueue,
		perClient:     *perClient,
		retryAfter:    *retryAfter,
		feedback:      *feedback,
		feedbackBatch: *feedbackBatch,
		feedbackQueue: *feedbackQueue,
		dataDir:       *dataDir,
		snapshotBytes: *snapshotBytes,
		walFsync:      *walFsync,
	}, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "listening on %s (endpoint %s/sparql)\n", *addr, *addr)
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() { <-shutdown; fmt.Fprintln(os.Stderr, "draining..."); close(stop) }()
	if err := runServer(&http.Server{Handler: handler}, ln, stop, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	// A final checkpoint folds the WAL into the snapshot, so the next
	// start recovers from the snapshot alone.
	if err := cleanup(); err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "drained, bye")
}

// runServer serves on ln until stop is closed, then shuts down gracefully:
// no new connections are accepted while in-flight requests get up to drain
// to complete. Split from main so tests can drive the full lifecycle
// in-process.
func runServer(srv *http.Server, ln net.Listener, stop <-chan struct{}, drain time.Duration) error {
	done := make(chan error, 1)
	go func() {
		<-stop
		ctx := context.Background()
		if drain > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, drain)
			defer cancel()
		}
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return <-done
}

// buildHandler loads the data and assembles the HTTP handler — everything
// main does short of binding a socket, so tests can serve it with
// httptest. The query path runs behind the prepared-query and result
// caches (sized by opts; zero disables), and the whole handler behind the
// admission controller when any ingress limit is set. Progress messages
// go to logw.
//
// The returned cleanup releases whatever the handler holds open — for a
// durable store it checkpoints and closes the WAL — and is never nil.
func buildHandler(opts options, logw io.Writer) (http.Handler, func() error, error) {
	dict := rdf.NewDict()
	reg := obs.NewRegistry()
	cleanup := func() error { return nil }
	cacheCfg := endpoint.CacheConfig{PreparedSize: opts.preparedCache, ResultSize: opts.resultCache}
	if opts.feedback && (len(opts.dataFiles) != 2 || opts.dataDir != "") {
		return nil, nil, fmt.Errorf("-feedback requires exactly two -data files and no -data-dir")
	}

	if opts.dataDir != "" {
		if len(opts.dataFiles) != 1 || opts.linksFile != "" {
			return nil, nil, fmt.Errorf("-data-dir durable serving requires exactly one -data file and no -links")
		}
		st, cl, err := openDurable(opts, dict, reg, logw)
		if err != nil {
			return nil, nil, err
		}
		cache := endpoint.NewQueryCache(cacheCfg, st.Generation)
		cache.SetObserver(reg)
		handler := endpoint.NewCachedHandler(st, cache)
		handler.SetObserver(reg)
		return wrapAdmission(handler, opts, reg), cl, nil
	}

	var stores []*store.Store
	for _, path := range opts.dataFiles {
		st, err := load(dict, path, reg)
		if err != nil {
			return nil, nil, err
		}
		st.SetObserver(reg)
		fmt.Fprintf(logw, "loaded %s\n", st.Stats())
		stores = append(stores, st)
	}

	var handler *endpoint.Handler
	if len(stores) == 1 && opts.linksFile == "" {
		st := stores[0]
		cache := endpoint.NewQueryCache(cacheCfg, st.Generation)
		cache.SetObserver(reg)
		handler = endpoint.NewCachedHandler(st, cache)
	} else {
		federation := fed.New(dict, stores...)
		var links *linkset.Set
		if opts.linksFile != "" {
			var err error
			links, err = loadLinks(dict, opts.linksFile)
			if err != nil {
				return nil, nil, err
			}
			fmt.Fprintf(logw, "loaded %d sameAs links\n", links.Len())
			federation.SetLinks(links)
		}
		res := fed.DefaultResilience()
		res.Timeout = opts.timeout
		res.MaxRetries = opts.retries
		res.PartialResults = opts.partialOK
		federation.SetResilience(res)
		federation.SetObserver(reg)
		cache := endpoint.NewQueryCache(cacheCfg, federation.DataGeneration)
		cache.SetObserver(reg)
		handler = endpoint.NewQueryHandler(fed.CachedEndpointQueryFunc(federation, cache), func() map[string]any {
			out := map[string]any{"sources": len(stores), "links": federation.Links().Len()}
			for _, st := range stores {
				out[st.Name()] = st.Len()
			}
			return out
		})
		handler.SetTraceFunc(fed.EndpointTraceFunc(federation))
		fmt.Fprintf(logw, "serving a federation of %d sources\n", len(stores))
		if opts.feedback {
			// The engine's candidate set becomes the federation's sameAs
			// links; every applied feedback batch pushes the refreshed set,
			// which bumps the data generation and invalidates cached
			// results.
			engine := core.New(stores[0], stores[1], core.Defaults())
			engine.SetObserver(reg)
			if links != nil {
				engine.SetInitialLinks(links.Links())
			}
			federation.SetLinks(engine.Candidates())
			stream := engine.FeedbackStream(core.StreamConfig{
				Capacity:  opts.feedbackQueue,
				BatchSize: opts.feedbackBatch,
			})
			handler.SetFeedbackFunc(endpoint.EngineFeedbackFunc(engine, stream, dict, func(core.EpisodeStats) {
				federation.SetLinks(engine.Candidates())
			}))
			fmt.Fprintf(logw, "live feedback enabled (batch %d, queue %d)\n", opts.feedbackBatch, opts.feedbackQueue)
		}
	}
	handler.SetObserver(reg)
	return wrapAdmission(handler, opts, reg), cleanup, nil
}

// wrapAdmission puts the handler behind the admission controller when any
// ingress limit is configured.
func wrapAdmission(handler *endpoint.Handler, opts options, reg *obs.Registry) http.Handler {
	if opts.maxConcurrent > 0 || opts.maxQueue > 0 || opts.perClient > 0 {
		adm := endpoint.NewAdmission(handler, endpoint.AdmissionConfig{
			MaxConcurrent: opts.maxConcurrent,
			MaxQueue:      opts.maxQueue,
			PerClient:     opts.perClient,
			RetryAfter:    opts.retryAfter,
		})
		adm.SetObserver(reg)
		return adm
	}
	return handler
}

// openDurable opens the single served store over its snapshot+WAL pair in
// opts.dataDir. A restart recovers entirely from disk; a cold start (or an
// empty directory) parses the -data file once and checkpoints it. With
// opts.snapshotBytes > 0 a background goroutine folds the WAL into a fresh
// snapshot whenever it outgrows that size; the returned cleanup stops it,
// takes a final checkpoint and closes the log.
func openDurable(opts options, dict *rdf.Dict, reg *obs.Registry, logw io.Writer) (*store.Store, func() error, error) {
	fsync, err := store.ParseFsyncMode(opts.walFsync)
	if err != nil {
		return nil, nil, err
	}
	rotate := opts.snapshotBytes
	if rotate <= 0 {
		rotate = math.MaxInt64 // shutdown-only checkpoints
	}
	path := opts.dataFiles[0]
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	d, err := store.OpenDurable(name, dict, store.DurableOptions{
		Dir: opts.dataDir, Fsync: fsync, RotateBytes: rotate, Obs: reg,
	})
	if err != nil {
		return nil, nil, err
	}
	st := d.Store()
	st.SetObserver(reg)
	rec := d.RecoveryStats()
	if rec.SnapshotLoaded || rec.WALRecords > 0 {
		fmt.Fprintf(logw, "recovered %s from %s: %d snapshot triples + %d wal records (%d torn bytes)\n",
			name, opts.dataDir, rec.SnapshotTriples, rec.WALRecords, rec.TornBytes)
		fmt.Fprintf(logw, "loaded %s\n", st.Stats())
	} else {
		if err := loadInto(st, path, reg); err != nil {
			_ = d.Close()
			return nil, nil, err
		}
		fmt.Fprintf(logw, "loaded %s\n", st.Stats())
		if err := d.Checkpoint(); err != nil {
			_ = d.Close()
			return nil, nil, err
		}
		fmt.Fprintf(logw, "checkpointed %s into %s\n", name, opts.dataDir)
	}
	stopRotate := make(chan struct{})
	var rotateDone chan struct{}
	if opts.snapshotBytes > 0 {
		rotateDone = make(chan struct{})
		go func() {
			defer close(rotateDone)
			t := time.NewTicker(5 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-stopRotate:
					return
				case <-t.C:
					// Errors are sticky in the WAL and surface at Close.
					_, _ = d.MaybeRotate()
				}
			}
		}()
	}
	return st, func() error {
		close(stopRotate)
		if rotateDone != nil {
			<-rotateDone
		}
		return d.Close()
	}, nil
}

func load(dict *rdf.Dict, path string, reg *obs.Registry) (*store.Store, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	st := store.New(name, dict)
	if err := loadInto(st, path, reg); err != nil {
		return nil, err
	}
	return st, nil
}

func loadInto(st *store.Store, path string, reg *obs.Registry) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".ttl" || ext == ".turtle" {
		_, err = store.LoadTurtle(st, f, store.LoadOptions{Obs: reg})
	} else {
		_, err = store.LoadNTriples(st, f, store.LoadOptions{Obs: reg})
	}
	return err
}

func loadLinks(dict *rdf.Dict, path string) (*linkset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	links := linkset.New()
	for _, t := range triples {
		if t.P.Value == rdf.OWLSameAs {
			links.Add(linkset.Link{Left: dict.Intern(t.S), Right: dict.Intern(t.O)})
		}
	}
	return links, nil
}
