package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixtures(t *testing.T, dir string) (dbp, nyt, links string) {
	t.Helper()
	dbp = filepath.Join(dir, "dbpedia.nt")
	nyt = filepath.Join(dir, "nytimes.nt")
	links = filepath.Join(dir, "links.nt")
	write := func(path, content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dbp, `<http://dbp/LeBron> <http://dbo/award> "NBA MVP 2013" .
`)
	write(nyt, `<http://nyt/article1> <http://nyo/about> <http://nyt/lebron_per> .
`)
	write(links, `<http://dbp/LeBron> <http://www.w3.org/2002/07/owl#sameAs> <http://nyt/lebron_per> .
`)
	return dbp, nyt, links
}

func get(t *testing.T, u string) (int, string) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSingleStoreServer(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	var log strings.Builder
	h, err := buildHandler(options{dataFiles: []string{dbp}}, &log)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	code, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"))
	if code != http.StatusOK {
		t.Fatalf("/sparql = %d: %s", code, body)
	}
	if !strings.Contains(body, "http://dbp/LeBron") {
		t.Errorf("result missing subject: %s", body)
	}
	if code, _ := get(t, srv.URL+"/stats"); code != http.StatusOK {
		t.Errorf("/stats = %d", code)
	}
	if code, _ := get(t, srv.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics = %d", code)
	}
	if !strings.Contains(log.String(), "loaded") {
		t.Errorf("no load progress logged: %q", log.String())
	}
}

// TestFederatedServer: multiple -data files plus -links serve a federation
// whose sameAs bridging answers the cross-dataset join, and whose /metrics
// exposes the fed resilience counters.
func TestFederatedServer(t *testing.T) {
	dbp, nyt, links := writeFixtures(t, t.TempDir())
	var log strings.Builder
	h, err := buildHandler(options{dataFiles: []string{dbp, nyt}, linksFile: links}, &log)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	join := `SELECT ?article WHERE { ?player <http://dbo/award> "NBA MVP 2013" . ?article <http://nyo/about> ?player . }`
	code, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(join))
	if code != http.StatusOK {
		t.Fatalf("/sparql = %d: %s", code, body)
	}
	if !strings.Contains(body, "http://nyt/article1") {
		t.Errorf("federated join missing answer: %s", body)
	}
	if !strings.Contains(log.String(), "federation of 2 sources") {
		t.Errorf("federation not announced: %q", log.String())
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"fed.queries", "fed.source_errors", "fed.retries", "fed.partial_queries"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("metrics missing %s (have %v)", key, snap.Counters)
		}
	}

	if code, _ := get(t, srv.URL+"/debug/trace?query="+url.QueryEscape(join)); code != http.StatusOK {
		t.Errorf("/debug/trace = %d", code)
	}
}

func TestBuildHandlerErrors(t *testing.T) {
	if _, err := buildHandler(options{dataFiles: []string{"/nonexistent.nt"}}, io.Discard); err == nil {
		t.Error("missing data file not reported")
	}
	dbp, nyt, _ := writeFixtures(t, t.TempDir())
	if _, err := buildHandler(options{dataFiles: []string{dbp, nyt}, linksFile: "/nonexistent.nt"}, io.Discard); err == nil {
		t.Error("missing links file not reported")
	}
}

func TestBadQueryGets400(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	h, err := buildHandler(options{dataFiles: []string{dbp}}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/sparql?query=NOT+SPARQL"); code != http.StatusBadRequest {
		t.Errorf("bad query = %d, want 400", code)
	}
}
