package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeFixtures(t *testing.T, dir string) (dbp, nyt, links string) {
	t.Helper()
	dbp = filepath.Join(dir, "dbpedia.nt")
	nyt = filepath.Join(dir, "nytimes.nt")
	links = filepath.Join(dir, "links.nt")
	write := func(path, content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dbp, `<http://dbp/LeBron> <http://dbo/award> "NBA MVP 2013" .
`)
	write(nyt, `<http://nyt/article1> <http://nyo/about> <http://nyt/lebron_per> .
`)
	write(links, `<http://dbp/LeBron> <http://www.w3.org/2002/07/owl#sameAs> <http://nyt/lebron_per> .
`)
	return dbp, nyt, links
}

func get(t *testing.T, u string) (int, string) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSingleStoreServer(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	var log strings.Builder
	h, _, err := buildHandler(options{dataFiles: []string{dbp}}, &log)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	code, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"))
	if code != http.StatusOK {
		t.Fatalf("/sparql = %d: %s", code, body)
	}
	if !strings.Contains(body, "http://dbp/LeBron") {
		t.Errorf("result missing subject: %s", body)
	}
	if code, _ := get(t, srv.URL+"/stats"); code != http.StatusOK {
		t.Errorf("/stats = %d", code)
	}
	if code, _ := get(t, srv.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics = %d", code)
	}
	if !strings.Contains(log.String(), "loaded") {
		t.Errorf("no load progress logged: %q", log.String())
	}
}

// TestFederatedServer: multiple -data files plus -links serve a federation
// whose sameAs bridging answers the cross-dataset join, and whose /metrics
// exposes the fed resilience counters.
func TestFederatedServer(t *testing.T) {
	dbp, nyt, links := writeFixtures(t, t.TempDir())
	var log strings.Builder
	h, _, err := buildHandler(options{dataFiles: []string{dbp, nyt}, linksFile: links}, &log)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	join := `SELECT ?article WHERE { ?player <http://dbo/award> "NBA MVP 2013" . ?article <http://nyo/about> ?player . }`
	code, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(join))
	if code != http.StatusOK {
		t.Fatalf("/sparql = %d: %s", code, body)
	}
	if !strings.Contains(body, "http://nyt/article1") {
		t.Errorf("federated join missing answer: %s", body)
	}
	if !strings.Contains(log.String(), "federation of 2 sources") {
		t.Errorf("federation not announced: %q", log.String())
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"fed.queries", "fed.source_errors", "fed.retries", "fed.partial_queries"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("metrics missing %s (have %v)", key, snap.Counters)
		}
	}

	if code, _ := get(t, srv.URL+"/debug/trace?query="+url.QueryEscape(join)); code != http.StatusOK {
		t.Errorf("/debug/trace = %d", code)
	}
}

// TestFeedbackServer is the streaming loop end to end: -feedback runs a
// live engine whose candidates back the federation's sameAs links, a
// cached cross-dataset join answers through the seeded link, and a
// disapproving POST /feedback removes it — invalidating the cached
// result via the generation bump, so the next query comes back empty.
func TestFeedbackServer(t *testing.T) {
	dbp, nyt, links := writeFixtures(t, t.TempDir())
	var log strings.Builder
	h, _, err := buildHandler(options{
		dataFiles:     []string{dbp, nyt},
		linksFile:     links,
		feedback:      true,
		feedbackBatch: 4,
		feedbackQueue: 64,
		preparedCache: 64,
		resultCache:   64,
	}, &log)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	if !strings.Contains(log.String(), "live feedback enabled") {
		t.Fatalf("feedback not announced: %q", log.String())
	}

	join := srv.URL + "/sparql?query=" + url.QueryEscape(
		`SELECT ?article WHERE { ?player <http://dbo/award> "NBA MVP 2013" . ?article <http://nyo/about> ?player . }`)
	for i := 0; i < 2; i++ { // second hit comes from the result cache
		code, body := get(t, join)
		if code != http.StatusOK || !strings.Contains(body, "http://nyt/article1") {
			t.Fatalf("join via engine candidates (try %d) = %d: %s", i, code, body)
		}
	}

	resp, err := http.Post(srv.URL+"/feedback", "application/json", strings.NewReader(
		`{"items":[{"left":"http://dbp/LeBron","right":"http://nyt/lebron_per","approved":false}],"flush":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /feedback = %d: %s", resp.StatusCode, body)
	}
	var fb struct {
		Accepted int `json:"accepted"`
		Batches  int `json:"batches"`
	}
	if err := json.Unmarshal(body, &fb); err != nil {
		t.Fatalf("feedback response not JSON: %v (%s)", err, body)
	}
	if fb.Accepted != 1 || fb.Batches == 0 {
		t.Fatalf("feedback response = %s, want 1 accepted and an applied batch", body)
	}

	// The disapproved link is gone and the cached result with it.
	code, qbody := get(t, join)
	if code != http.StatusOK {
		t.Fatalf("join after feedback = %d: %s", code, qbody)
	}
	if strings.Contains(qbody, "http://nyt/article1") {
		t.Errorf("disapproved link still answers the join: %s", qbody)
	}

	code, mbody := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, key := range []string{"endpoint.feedback.requests", "core.stream.submitted", "core.stream.batches"} {
		if !strings.Contains(mbody, key) {
			t.Errorf("metrics missing %s", key)
		}
	}
}

func TestBuildHandlerErrors(t *testing.T) {
	if _, _, err := buildHandler(options{dataFiles: []string{"/nonexistent.nt"}}, io.Discard); err == nil {
		t.Error("missing data file not reported")
	}
	dbp, nyt, links := writeFixtures(t, t.TempDir())
	if _, _, err := buildHandler(options{dataFiles: []string{dbp, nyt}, linksFile: "/nonexistent.nt"}, io.Discard); err == nil {
		t.Error("missing links file not reported")
	}
	dir := t.TempDir()
	if _, _, err := buildHandler(options{dataFiles: []string{dbp, nyt}, linksFile: links, dataDir: dir}, io.Discard); err == nil {
		t.Error("-data-dir with a federation not rejected")
	}
	if _, _, err := buildHandler(options{dataFiles: []string{dbp}, feedback: true}, io.Discard); err == nil {
		t.Error("-feedback with one -data file not rejected")
	}
	if _, _, err := buildHandler(options{dataFiles: []string{dbp}, dataDir: dir, walFsync: "sometimes"}, io.Discard); err == nil {
		t.Error("bad -wal-fsync mode not rejected")
	}
}

// TestDurableServerRestart is the full server durability cycle: a first
// build cold-loads the -data file and checkpoints it, serves a write via
// the store, and its cleanup folds the WAL; a second build over the same
// directory recovers from disk without touching -data (proven by deleting
// the file) and serves both the original and the post-load triples.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	dbp, _, _ := writeFixtures(t, dir)
	dataDir := filepath.Join(dir, "state")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}

	var log strings.Builder
	h, cleanup, err := buildHandler(options{dataFiles: []string{dbp}, dataDir: dataDir}, &log)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "checkpointed dbpedia") {
		t.Fatalf("cold start did not checkpoint: %q", log.String())
	}
	srv := httptest.NewServer(h)
	code, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"))
	if code != http.StatusOK || !strings.Contains(body, "http://dbp/LeBron") {
		t.Fatalf("first server query = %d: %s", code, body)
	}
	srv.Close()
	if err := cleanup(); err != nil {
		t.Fatalf("cleanup: %v", err)
	}

	// The restart must not need the original file.
	if err := os.Remove(dbp); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	h2, cleanup2, err := buildHandler(options{dataFiles: []string{dbp}, dataDir: dataDir}, &log)
	if err != nil {
		t.Fatalf("restart over the data dir: %v", err)
	}
	defer func() {
		if err := cleanup2(); err != nil {
			t.Errorf("cleanup after restart: %v", err)
		}
	}()
	if !strings.Contains(log.String(), "recovered dbpedia") {
		t.Fatalf("restart did not recover from disk: %q", log.String())
	}
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	code, body = get(t, srv2.URL+"/sparql?query="+url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"))
	if code != http.StatusOK || !strings.Contains(body, "http://dbp/LeBron") {
		t.Fatalf("recovered server query = %d: %s", code, body)
	}
}

func TestBadQueryGets400(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	h, _, err := buildHandler(options{dataFiles: []string{dbp}}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/sparql?query=NOT+SPARQL"); code != http.StatusBadRequest {
		t.Errorf("bad query = %d, want 400", code)
	}
}

// slowQuery starts a POST whose body is an open pipe: the endpoint blocks
// reading it, deterministically holding one admission slot (and one
// in-flight request) until the returned finish func writes the query and
// closes the body. done yields the final status code.
func slowQuery(t *testing.T, baseURL string) (finish func(), done <-chan int) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/sparql", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/sparql-query")
	ch := make(chan int, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			ch <- -1
			return
		}
		resp.Body.Close()
		ch <- resp.StatusCode
	}()
	return func() {
		io.WriteString(pw, "SELECT ?s WHERE { ?s ?p ?o }")
		pw.Close()
	}, ch
}

// TestSaturationSheds503 drives the -max-concurrent/-max-queue/-retry-after
// path: with one slot, no queue, and an in-flight query pinned, further
// requests are shed with 503 + Retry-After, and service resumes once the
// pinned query completes.
func TestSaturationSheds503(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	h, _, err := buildHandler(options{
		dataFiles:     []string{dbp},
		maxConcurrent: 1,
		retryAfter:    2 * time.Second,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	finish, done := slowQuery(t, srv.URL)
	// The pinned query holds the only slot as soon as the server accepts
	// it; until then concurrent GETs may still win the slot, so poll.
	statsURL := srv.URL + "/stats"
	var code int
	var hdr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(statsURL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		code, hdr = resp.StatusCode, resp.Header.Get("Retry-After")
		if code == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server never shed load, last status %d", code)
	}
	if hdr != "2" {
		t.Errorf("Retry-After = %q, want %q from -retry-after=2s", hdr, "2")
	}

	finish()
	if got := <-done; got != http.StatusOK {
		t.Fatalf("pinned query = %d, want 200", got)
	}
	// Capacity freed: requests flow again.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ = get(t, statsURL); code == http.StatusOK {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server did not recover after the slot freed, last status %d", code)
}

// TestGracefulDrain runs the real serve loop: a query in flight when
// shutdown begins completes with 200 while new connections are refused,
// and runServer returns cleanly within the drain budget.
func TestGracefulDrain(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	h, _, err := buildHandler(options{dataFiles: []string{dbp}}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + ln.Addr().String()
	// Wrap the handler to announce when the pinned POST is in flight, so
	// shutdown provably begins while it executes (Shutdown would otherwise
	// race the client's dial and refuse the connection outright).
	entered := make(chan struct{})
	var enteredOnce sync.Once
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			enteredOnce.Do(func() { close(entered) })
		}
		h.ServeHTTP(w, r)
	})
	stop := make(chan struct{})
	served := make(chan error, 1)
	go func() { served <- runServer(&http.Server{Handler: wrapped}, ln, stop, 10*time.Second) }()

	// Confirm the server is up, then pin a query in flight.
	if code, _ := get(t, baseURL+"/stats"); code != http.StatusOK {
		t.Fatalf("/stats before drain = %d", code)
	}
	http.DefaultClient.CloseIdleConnections() // idle keep-alives would also be drained
	finish, done := slowQuery(t, baseURL)
	<-entered
	close(stop)

	// The listener closes promptly on shutdown; poll until new connections
	// are refused while the pinned query is still in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(baseURL + "/stats"); err != nil {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("draining server still accepts new connections")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case code := <-done:
		t.Fatalf("in-flight query finished early with %d — pipe trick broken", code)
	default:
	}

	finish()
	if code := <-done; code != http.StatusOK {
		t.Errorf("in-flight query during drain = %d, want 200", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("runServer = %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("runServer did not return after the drain completed")
	}
}

// TestMetricsExposeServingNames: with caches and admission enabled,
// /metrics carries every serving-at-load series from the obs registry.
func TestMetricsExposeServingNames(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	h, _, err := buildHandler(options{
		dataFiles:     []string{dbp},
		preparedCache: 64,
		resultCache:   64,
		maxConcurrent: 8,
		maxQueue:      8,
		retryAfter:    time.Second,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	// One repeated query so the hit counters are live, not just declared.
	q := srv.URL + "/sparql?query=" + url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }")
	for i := 0; i < 2; i++ {
		if code, body := get(t, q); code != http.StatusOK {
			t.Fatalf("query %d = %d: %s", i, code, body)
		}
	}
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{
		"endpoint.prepared.hits", "endpoint.prepared.misses", "endpoint.prepared.evictions",
		"endpoint.result.hits", "endpoint.result.misses", "endpoint.result.evictions",
		"endpoint.result.invalidations",
		"endpoint.admission.rejected", "endpoint.admission.queued",
	} {
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("metrics missing counter %s", key)
		}
	}
	for _, key := range []string{"endpoint.admission.active", "endpoint.admission.queue_depth"} {
		if _, ok := snap.Gauges[key]; !ok {
			t.Errorf("metrics missing gauge %s", key)
		}
	}
	if snap.Counters["endpoint.prepared.hits"] == 0 {
		t.Error("repeated query produced no prepared-cache hits")
	}
	if snap.Counters["endpoint.result.hits"] == 0 {
		t.Error("repeated query produced no result-cache hits")
	}
}
