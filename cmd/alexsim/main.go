// Command alexsim drives the ALEX stack with deterministic, seeded,
// weighted-operation traffic: entity SELECT/ASK queries against a live
// in-process SPARQL endpoint, federated joins with sameAs rewrites,
// feedback episodes through the engine, bulk loads, and scheduled source
// outages with recovery — while continuously checking invariants (no
// panics, breaker recovery, blacklist/confirmed-link retention, bounded
// resources, a sampled shadow oracle).
//
// Usage:
//
//	alexsim -seed 42 -rounds 300 -report SIM.json -oplog sim.log
//
// The op log is byte-identical for the same seed at any -workers setting;
// CI diffs two runs to enforce it. The JSON report shares cmd/alexbench's
// result shape, so `alexbench compare` diffs sim latency reports directly.
//
// Exit codes: 0 clean, 1 invariant violations, 2 usage or setup error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"alex/internal/faultinject"
	"alex/internal/obs"
	"alex/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so tests can drive the
// whole command in-process. It returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("alexsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "seed for the run; equal seeds reproduce byte-identical op logs")
	rounds := fs.Int("rounds", 100, "simulation rounds (the outage schedule's logical clock)")
	opsPerRound := fs.Int("ops-per-round", 8, "weighted operations per round")
	workers := fs.Int("workers", 0, "concurrent read-op workers (0 = GOMAXPROCS); does not affect the op log")
	scale := fs.Float64("scale", 0.25, "data-set scale (1.0 = the alexbench DBpedia/NYTimes scenario)")
	sampleEvery := fs.Int("sample-every", 16, "shadow-check every Nth read op (0 disables)")
	cache := fs.Bool("cache", false, "serve the endpoint through the query caches and admission controller; must not change the op log")
	stream := fs.Bool("stream", false, "run the streaming loop: POST /feedback ingestion plus live store growth (live_upsert/feedback_http ops); op log stays worker-independent")
	dataDir := fs.String("data-dir", "", "run DS1 durably (snapshot+WAL) in this directory and crash/recover it mid-run; must not change the op log")
	walFsync := fs.String("wal-fsync", "", "WAL fsync policy with -data-dir: batch (default), always, off")
	outageFrom := fs.Int("outage-from", -1, "round at which the NYTimes source goes down (-1 = auto when rounds >= 20)")
	outageTo := fs.Int("outage-to", -1, "round at which the NYTimes source recovers (-1 = auto)")
	maxGoroutines := fs.Int("max-goroutine-growth", 0, "goroutine growth bound over baseline (0 = default)")
	maxHeap := fs.Uint64("max-heap", 0, "heap bound in bytes at round ends (0 = default)")
	reportPath := fs.String("report", "", "write the JSON report to this file")
	oplogPath := fs.String("oplog", "", "write the deterministic op log to this file (- for stdout)")
	summaryPath := fs.String("summary", "", "write a Markdown summary to this file (for CI step summaries)")
	quiet := fs.Bool("quiet", false, "suppress the Markdown summary on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "alexsim: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	var outages []faultinject.Window
	from, to := *outageFrom, *outageTo
	if from < 0 && to < 0 && *rounds >= 20 {
		// Default soak shape: one mid-run outage of the NYTimes member,
		// long enough for the breaker to open and recovery to be asserted.
		from = *rounds / 3
		to = from + *rounds/5
	}
	if from >= 0 || to >= 0 {
		if from < 0 || to < 0 {
			fmt.Fprintln(stderr, "alexsim: -outage-from and -outage-to must be set together")
			return 2
		}
		outages = append(outages, faultinject.Window{Source: "NYTimes", From: from, To: to})
	}

	var oplog io.Writer
	var oplogFile *os.File
	switch *oplogPath {
	case "":
	case "-":
		oplog = stdout
	default:
		f, err := os.Create(*oplogPath)
		if err != nil {
			fmt.Fprintf(stderr, "alexsim: %v\n", err)
			return 2
		}
		oplogFile = f
		oplog = f
	}

	reg := obs.NewRegistry()
	report, err := traffic.Run(context.Background(), traffic.Config{
		Seed:               *seed,
		Rounds:             *rounds,
		OpsPerRound:        *opsPerRound,
		Workers:            *workers,
		Scale:              *scale,
		SampleEvery:        *sampleEvery,
		Cache:              *cache,
		Stream:             *stream,
		DataDir:            *dataDir,
		WALSync:            *walFsync,
		Outages:            outages,
		MaxGoroutineGrowth: *maxGoroutines,
		MaxHeapBytes:       *maxHeap,
		Now:                time.Now,
		Obs:                reg,
		OpLog:              oplog,
	})
	if oplogFile != nil {
		if cerr := oplogFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "alexsim: %v\n", err)
		return 2
	}

	if *reportPath != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "alexsim: encode report: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*reportPath, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(stderr, "alexsim: %v\n", err)
			return 2
		}
	}
	summary := report.MarkdownSummary()
	if *summaryPath != "" {
		if err := os.WriteFile(*summaryPath, []byte(summary), 0o644); err != nil {
			fmt.Fprintf(stderr, "alexsim: %v\n", err)
			return 2
		}
	}
	if !*quiet {
		fmt.Fprint(stdout, summary)
	}
	if n := len(report.Sim.Violations); n > 0 {
		fmt.Fprintf(stderr, "alexsim: %d invariant violation(s):\n", n)
		for _, v := range report.Sim.Violations {
			fmt.Fprintf(stderr, "  %s\n", v)
		}
		return 1
	}
	return 0
}
