package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runSim drives the whole command in-process and returns (exit, stdout,
// stderr).
func runSim(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSmokeCleanRun(t *testing.T) {
	code, stdout, stderr := runSim(t,
		"-seed", "42", "-rounds", "8", "-ops-per-round", "4", "-scale", "0.1")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"### alexsim: seed 42", "violations **0**", "| op | count |"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestSeedReproducible runs the same seed twice and requires byte-equal
// op logs — the gate CI enforces on every PR.
func TestSeedReproducible(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.log")
	b := filepath.Join(dir, "b.log")
	for _, path := range []string{a, b} {
		code, _, stderr := runSim(t,
			"-seed", "7", "-rounds", "8", "-ops-per-round", "4", "-scale", "0.1",
			"-quiet", "-oplog", path)
		if code != 0 {
			t.Fatalf("exit = %d; stderr:\n%s", code, stderr)
		}
	}
	la, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(la, lb) {
		t.Fatal("op logs differ between two runs of the same seed")
	}
	if len(la) == 0 {
		t.Fatal("op log is empty")
	}
}

// TestDurableRunClean drives the CLI with -data-dir: the run attaches the
// durable layer, crash/recovers it mid-run via the auto-weighted
// crash_restart op, and must exit clean with crash lines in the log.
func TestDurableRunClean(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "sim.log")
	code, _, stderr := runSim(t,
		"-seed", "21", "-rounds", "8", "-ops-per-round", "6", "-scale", "0.1",
		"-quiet", "-data-dir", filepath.Join(dir, "state"), "-wal-fsync", "off",
		"-oplog", logPath)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	log, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(log), "crash_restart") {
		t.Error("durable run scheduled no crash_restart ops")
	}
	if strings.Contains(string(log), "equal=false") {
		t.Error("op log records a failed recovery equivalence")
	}
}

// TestStreamRunClean drives the CLI with -stream: the run serves POST
// /feedback over the wire and grows the stores live, and must exit clean
// with both streaming op kinds in the log.
func TestStreamRunClean(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "sim.log")
	code, _, stderr := runSim(t,
		"-seed", "58", "-rounds", "10", "-ops-per-round", "6", "-scale", "0.1",
		"-quiet", "-stream", "-oplog", logPath)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, stderr)
	}
	log, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"feedback_http", "live_upsert", "inv stream_drained"} {
		if !strings.Contains(string(log), want) {
			t.Errorf("streaming op log missing %q", want)
		}
	}
}

func TestReportAndSummaryFiles(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "SIM.json")
	summary := filepath.Join(dir, "summary.md")
	code, _, stderr := runSim(t,
		"-seed", "3", "-rounds", "6", "-ops-per-round", "4", "-scale", "0.1",
		"-quiet", "-report", report, "-summary", summary)
	if code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Label      string                     `json:"label"`
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
		Sim        struct {
			Seed int64 `json:"seed"`
			Ops  int   `json:"ops"`
		} `json:"sim"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if parsed.Label != "sim" || parsed.Sim.Seed != 3 || parsed.Sim.Ops != 24 {
		t.Errorf("report fields = %+v, want label=sim seed=3 ops=24", parsed)
	}
	if len(parsed.Benchmarks) == 0 {
		t.Error("report has no benchmarks map; alexbench compare would see nothing")
	}
	for name := range parsed.Benchmarks {
		if !strings.HasPrefix(name, "SimOp/") {
			t.Errorf("benchmark name %q does not use the SimOp/ prefix", name)
		}
	}
	md, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "### alexsim: seed 3") {
		t.Errorf("summary missing header:\n%s", md)
	}
}

// TestViolationExitCode forces a heap-bound violation and expects exit 1
// with the violation on stderr.
func TestViolationExitCode(t *testing.T) {
	code, _, stderr := runSim(t,
		"-seed", "1", "-rounds", "2", "-ops-per-round", "2", "-scale", "0.1",
		"-quiet", "-max-heap", "1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "invariant violation") || !strings.Contains(stderr, "heap_bound") {
		t.Errorf("stderr missing violation detail:\n%s", stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"positional"},
		{"-rounds", "25", "-outage-from", "3"},           // -outage-to missing
		{"-rounds", "0"},                                 // rejected by traffic.Config
		{"-rounds", "10", "-ops-per-round", "0"},         // rejected by traffic.Config
		{"-rounds", "5", "-oplog", "/nonexistent/x.log"}, // unwritable oplog
	}
	for _, args := range cases {
		if code, _, _ := runSim(t, args...); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}
