// Command alex runs the paper-reproduction experiments: every table and
// figure of "ALEX: Automatic Link Exploration in Linked Data" has an
// experiment id (see -list). Results print to stdout in the shape the paper
// reports (per-episode precision/recall/F-measure series, search-space
// counts, sensitivity sweeps).
//
// Usage:
//
//	alex -list
//	alex -exp fig2a
//	alex -exp all -scale 0.5 -seed 7
//	alex -exp fig2a -trace
//
// With -trace, engine metrics (feedback counts, explorations, rollbacks,
// ε-greedy pick split, episode latency quantiles) and the span trees of
// the most recent episodes are printed to stderr after the experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"alex/internal/experiment"
	"alex/internal/obs"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to run (or 'all')")
		list   = flag.Bool("list", false, "list available experiments")
		scale  = flag.Float64("scale", 1, "data-set size multiplier")
		seed   = flag.Int64("seed", 42, "random seed")
		svgDir = flag.String("svg", "", "also render the experiment's figure(s) as SVG into this directory")
		trace  = flag.Bool("trace", false, "print engine metrics and recent episode span trees to stderr")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiment.Experiments {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all      run everything in paper order")
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: alex -exp <id> [-scale N] [-seed N]")
			os.Exit(2)
		}
		return
	}

	opt := experiment.Options{Scale: *scale, Seed: *seed}
	if *trace {
		opt.Obs = obs.NewRegistry()
		defer printObservations(opt.Obs)
	}
	if *exp == "all" {
		if err := experiment.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "alex:", err)
			os.Exit(1)
		}
		if *svgDir != "" {
			for _, e := range experiment.Experiments {
				renderSVG(e.ID, opt, *svgDir)
			}
		}
		return
	}
	e, ok := experiment.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "alex: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	if err := e.Run(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "alex:", err)
		os.Exit(1)
	}
	if *svgDir != "" {
		renderSVG(*exp, opt, *svgDir)
	}
}

// printObservations dumps the metrics snapshot and the retained episode
// span trees after a traced run.
func printObservations(reg *obs.Registry) {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err == nil {
		fmt.Fprintf(os.Stderr, "\nmetrics:\n%s\n", raw)
	}
	traces := reg.Traces()
	if len(traces) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "\nlast %d episode traces:\n", len(traces))
	for _, tr := range traces {
		fmt.Fprintln(os.Stderr, tr.String())
	}
}

// renderSVG writes the experiment's figure files (if it has a graphical
// form) into dir.
func renderSVG(id string, opt experiment.Options, dir string) {
	figs, err := experiment.RenderFigures(id, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alex: rendering %s: %v\n", id, err)
		return
	}
	for name, svg := range figs {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "alex:", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}
