// Command alexlink links two RDF data sets end-to-end: PARIS produces the
// initial owl:sameAs candidates, then ALEX refines them from feedback. With
// a -truth file the feedback is simulated from ground truth (the paper's
// evaluation protocol) and quality is reported per episode; without one,
// links are printed for external review. The improved link set is written
// as owl:sameAs N-Triples.
//
// Usage:
//
//	alexlink -left dbpedia.nt -right nytimes.nt -truth truth.nt -out links.nt
//	alexlink -left a.ttl -right b.ttl -out links.nt            (PARIS only)
//	alexlink ... -state alex.state                             (checkpoint)
//	alexlink ... -report                                       (learned features)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"alex/internal/core"
	"alex/internal/feedback"
	"alex/internal/linkset"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/reason"
	"alex/internal/store"
)

func main() {
	var (
		left     = flag.String("left", "", "first (larger) data set, N-Triples or Turtle")
		right    = flag.String("right", "", "second data set")
		truthF   = flag.String("truth", "", "ground-truth owl:sameAs file (enables feedback simulation)")
		out      = flag.String("out", "", "output owl:sameAs N-Triples file (default stdout)")
		stateF   = flag.String("state", "", "checkpoint file: loaded if present, saved after the run")
		report   = flag.Bool("report", false, "print the learned feature-distinctiveness table")
		episodes = flag.Int("episodes", 0, "max episodes (default: run to convergence, cap 100)")
		episode  = flag.Int("episode-size", 100, "feedback items per episode")
		parts    = flag.Int("partitions", 8, "search-space partitions")
		seed     = flag.Int64("seed", 1, "random seed")
		thresh   = flag.Float64("paris-threshold", 0.95, "PARIS score threshold for seed links")
		mutual   = flag.Bool("mutual-best", false, "keep only mutual-best PARIS seed links (1:1 filter)")
		closure  = flag.Bool("closure", false, "also write the symmetric-transitive closure of the final links")
	)
	flag.Parse()
	if *left == "" || *right == "" {
		fmt.Fprintln(os.Stderr, "usage: alexlink -left <file> -right <file> [-truth <file>] [-out <file>]")
		os.Exit(2)
	}

	dict := rdf.NewDict()
	ds1 := mustLoad(dict, *left)
	ds2 := mustLoad(dict, *right)
	fmt.Fprintln(os.Stderr, "loaded", ds1.Stats())
	fmt.Fprintln(os.Stderr, "loaded", ds2.Stats())

	pcfg := paris.DefaultConfig()
	pcfg.Threshold = *thresh
	scored := paris.Link(ds1, ds2, pcfg)
	fmt.Fprintf(os.Stderr, "PARIS: %d candidate links (threshold %.2f)\n", len(scored), *thresh)
	if *mutual {
		scored = linkset.MutualBest(scored)
		fmt.Fprintf(os.Stderr, "mutual-best filter: %d links remain\n", len(scored))
	}

	cfg := core.Defaults()
	cfg.EpisodeSize = *episode
	cfg.Partitions = *parts
	cfg.Seed = *seed
	if *episodes > 0 {
		cfg.MaxEpisodes = *episodes
	}
	engine := core.New(ds1, ds2, cfg)
	init := make([]linkset.Link, len(scored))
	for i, s := range scored {
		init[i] = s.Link
	}
	engine.SetInitialLinks(init)

	if *stateF != "" {
		if f, err := os.Open(*stateF); err == nil {
			if err := engine.LoadState(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "restored state from %s (%d links)\n", *stateF, engine.Candidates().Len())
		}
	}

	if *truthF != "" {
		truth := mustLoadLinks(dict, *truthF)
		fmt.Fprintf(os.Stderr, "truth: %d links; running feedback episodes\n", truth.Len())
		oracle := feedback.NewOracle(truth, 0, rand.New(rand.NewSource(*seed)))
		engine.Run(oracle.JudgeFunc(), func(st core.EpisodeStats) {
			q := linkset.Evaluate(engine.Candidates(), truth)
			fmt.Fprintf(os.Stderr, "episode %3d: P=%.3f R=%.3f F=%.3f (%d candidates)\n",
				st.Episode, q.Precision, q.Recall, q.FMeasure, st.Candidates)
		})
	} else {
		fmt.Fprintln(os.Stderr, "no -truth file: emitting PARIS links unrefined (provide feedback via the library API)")
	}

	if *stateF != "" {
		f, err := os.Create(*stateF)
		if err != nil {
			fatal(err)
		}
		if err := engine.SaveState(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "saved state to %s\n", *stateF)
	}

	if *report {
		fmt.Fprintln(os.Stderr, "\nlearned feature distinctiveness:")
		for i := 0; i < engine.Partitions(); i++ {
			for _, fq := range engine.FeatureReport(i, 3) {
				fmt.Fprintf(os.Stderr, "  p%d: %s\n", i, fq)
			}
		}
	}

	links := engine.Candidates()
	if *closure {
		closed := reason.NewSameAs(links)
		before := links.Len()
		for _, l := range closed.ClosureLinks() {
			links.Add(l)
		}
		fmt.Fprintf(os.Stderr, "closure added %d links\n", links.Len()-before)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	writer := rdf.NewWriter(w)
	sameAs := rdf.NewIRI(rdf.OWLSameAs)
	for _, l := range links.Links() {
		t := rdf.Triple{S: dict.Term(l.Left), P: sameAs, O: dict.Term(l.Right)}
		if err := writer.Write(t); err != nil {
			fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d links\n", links.Len())
}

func mustLoad(dict *rdf.Dict, path string) *store.Store {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	st := store.New(name, dict)
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".ttl" || ext == ".turtle" {
		_, err = store.LoadTurtle(st, f, store.LoadOptions{})
	} else {
		_, err = store.LoadNTriples(st, f, store.LoadOptions{})
	}
	if err != nil {
		fatal(err)
	}
	return st
}

func mustLoadLinks(dict *rdf.Dict, path string) *linkset.Set {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		fatal(err)
	}
	links := linkset.New()
	for _, t := range triples {
		if t.P.Value == rdf.OWLSameAs {
			links.Add(linkset.Link{Left: dict.Intern(t.S), Right: dict.Intern(t.O)})
		}
	}
	return links
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alexlink:", err)
	os.Exit(1)
}
