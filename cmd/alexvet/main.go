// Command alexvet runs the repository's custom static-analysis suite
// (internal/lint) over a module: obsnames, ctxflow, nodeterminism,
// errwrap, nopanic, lockdiscipline and genbump. It exits 1 when any
// diagnostic survives //lint:ignore suppression, 2 on usage or load
// errors, so CI can fail the build on findings.
//
// Usage:
//
//	alexvet [-json] [-list] [-analyzers a,b] [-graph func] [dir]
//
// dir defaults to the current directory and must be a module root (the
// trailing /... of a package pattern is accepted and ignored, so
// `alexvet ./...` works as expected).
//
// -graph prints the module call graph rooted at one function — every
// resolved callee with its edge kind (static, interface, func-value) and
// call position — the debugging view of what the interprocedural
// analyzers traverse. The function is named by substring of its rendered
// form ("store.(*Store).AddID", or just "AddID").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"alex/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("alexvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	graph := fs.String("graph", "", "print the call-graph edges of functions matching this substring and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	// Accept package-pattern spelling: ./... means the whole module.
	dir = strings.TrimSuffix(dir, "...")
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" {
		dir = "."
	}
	module, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		fmt.Fprintf(stderr, "alexvet: %v\n", err)
		return 2
	}
	analyzers := lint.DefaultAnalyzers(module)
	if *only != "" {
		analyzers, err = filterAnalyzers(analyzers, *only)
		if err != nil {
			fmt.Fprintf(stderr, "alexvet: %v\n", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	prog, err := lint.Load(lint.Config{Dir: dir, ModulePath: module})
	if err != nil {
		fmt.Fprintf(stderr, "alexvet: %v\n", err)
		return 2
	}
	if *graph != "" {
		if err := lint.DescribeGraph(stdout, prog, *graph); err != nil {
			fmt.Fprintf(stderr, "alexvet: %v\n", err)
			return 2
		}
		return 0
	}
	diags := lint.RelativeTo(lint.Run(prog, analyzers), dir)
	if *jsonOut {
		if err := lint.EncodeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "alexvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// filterAnalyzers keeps the named subset, erroring on unknown names.
func filterAnalyzers(all []lint.Analyzer, names string) ([]lint.Analyzer, error) {
	byName := make(map[string]lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", fmt.Errorf("not a module root: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("no module declaration in %s", gomod)
}
