package main

import (
	"bytes"
	"strings"
	"testing"
)

// repoRoot is the module root relative to this package's test directory.
const repoRoot = "../.."

// TestRepoIsLintClean runs the full analyzer suite over the repository
// itself, in process. This is the suite eating its own cooking: a change
// that introduces a violation anywhere in the module fails `go test` here,
// not just `make lint`.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{repoRoot}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("alexvet exit %d on the repository, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("diagnostics on a clean repo:\n%s", stdout.String())
	}
}

func TestJSONOutputOnCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", repoRoot}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if got := stdout.String(); got != "[]\n" {
		t.Errorf("-json on a clean repo = %q, want %q", got, "[]\n")
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list", repoRoot}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	for _, name := range []string{"obsnames", "ctxflow", "nodeterminism", "errwrap", "nopanic", "lockdiscipline", "genbump"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

// TestAnalyzerSubset runs a two-analyzer subset in process: the subset
// must load, run only the named analyzers, and stay clean on the repo.
func TestAnalyzerSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "lockdiscipline,genbump", repoRoot}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("exit %d for -analyzers lockdiscipline,genbump, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("diagnostics from subset on a clean repo:\n%s", stdout.String())
	}
}

// TestGraphMode prints the call-graph neighborhood of a store entry point
// and checks the edges the interprocedural analyzers depend on are
// resolved and rendered with kind + position.
func TestGraphMode(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-graph", "store.(*Store).AddID", repoRoot}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"store.(*Store).AddID (store.go:",
		"static",
		"store.(*tripleIndex).add",
		"atomic.(*Uint64).Add",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-graph output missing %q:\n%s", want, out)
		}
	}
}

func TestGraphModeUnknownFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-graph", "NoSuchFunctionAnywhere", repoRoot}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("exit %d for unknown -graph function, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no module function matching") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "bogus", repoRoot}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("exit %d for unknown analyzer, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", stderr.String())
	}
}

func TestNonModuleDirRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// This package's own directory has no go.mod.
	code := run([]string{"."}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("exit %d for a non-module dir, want 2", code)
	}
}

func TestPackagePatternSpelling(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-list", repoRoot + "/..."}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("`alexvet dir/...` rejected: exit %d, stderr:\n%s", code, stderr.String())
	}
}
