// Command fedsparql runs federated SPARQL queries over N-Triples files,
// bridging entities through an owl:sameAs link file — the substrate ALEX
// assumes (paper §3.2). Each answer is printed with its link provenance:
// the sameAs links that produced it.
//
// Usage:
//
//	fedsparql -data dbpedia.nt -data nytimes.nt -links truth.nt \
//	    -query 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'
//
// With no -query, queries are read from stdin, one per line. With -trace,
// each query's execution span tree (per-pattern timings, source names,
// join cardinalities, sameAs rewrites) is printed to stderr, followed by
// a JSON metrics snapshot on exit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alex/internal/endpoint"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/store"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var dataFiles, remotes multiFlag
	flag.Var(&dataFiles, "data", "N-Triples or Turtle file (repeatable)")
	flag.Var(&remotes, "remote", "remote SPARQL endpoint URL, e.g. http://host:8181/sparql (repeatable; see cmd/sparqld)")
	linksFile := flag.String("links", "", "owl:sameAs N-Triples link file")
	query := flag.String("query", "", "SPARQL query (default: read from stdin)")
	trace := flag.Bool("trace", false, "print each query's execution span tree and a final metrics snapshot to stderr")
	flag.Parse()

	if len(dataFiles) == 0 && len(remotes) == 0 {
		fmt.Fprintln(os.Stderr, "fedsparql: at least one -data file or -remote endpoint is required")
		os.Exit(2)
	}
	dict := rdf.NewDict()
	var stores []*store.Store
	for _, path := range dataFiles {
		st, err := loadStore(dict, path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s\n", st.Stats())
		stores = append(stores, st)
	}
	federation := fed.New(dict, stores...)
	for i, remoteURL := range remotes {
		name := fmt.Sprintf("remote%d", i+1)
		federation.AddSource(fed.RemoteSource(endpoint.NewClient(name, remoteURL, nil)))
		fmt.Fprintf(os.Stderr, "added remote endpoint %s = %s\n", name, remoteURL)
	}
	if *linksFile != "" {
		links, err := loadLinks(dict, *linksFile)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d sameAs links\n", links.Len())
		federation.SetLinks(links)
	}

	var reg *obs.Registry
	if *trace {
		reg = obs.NewRegistry()
		federation.SetObserver(reg)
		defer printMetrics(reg)
	}

	if *query != "" {
		if err := runQuery(federation, *query, *trace); err != nil {
			fatal(err)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if err := runQuery(federation, q, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "fedsparql:", err)
		}
	}
}

// printMetrics dumps the final metrics snapshot as indented JSON.
func printMetrics(reg *obs.Registry) {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return
	}
	fmt.Fprintf(os.Stderr, "metrics:\n%s\n", raw)
}

func loadStore(dict *rdf.Dict, path string) (*store.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	st := store.New(name, dict)
	var triples []rdf.Triple
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".ttl" || ext == ".turtle" {
		triples, err = rdf.ParseTurtle(f)
	} else {
		triples, err = rdf.NewReader(f).ReadAll()
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	st.Load(triples)
	return st, nil
}

func loadLinks(dict *rdf.Dict, path string) (*linkset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	links := linkset.New()
	for _, t := range triples {
		if t.P.Value != rdf.OWLSameAs {
			continue
		}
		links.Add(linkset.Link{Left: dict.Intern(t.S), Right: dict.Intern(t.O)})
	}
	return links, nil
}

func runQuery(federation *fed.Federation, query string, trace bool) error {
	var res *fed.Result
	var err error
	if trace {
		var tr *obs.Trace
		res, tr, err = federation.ExecuteTrace(query)
		if tr != nil {
			fmt.Fprintln(os.Stderr, tr.String())
		}
	} else {
		res, err = federation.Execute(query)
	}
	if err != nil {
		return err
	}
	if res.Triples != nil {
		w := rdf.NewWriter(os.Stdout)
		for _, t := range res.Triples {
			if err := w.Write(t); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Printf("%d triple(s)\n", len(res.Triples))
		return nil
	}
	for i, a := range res.Answers {
		var parts []string
		for _, v := range res.Vars {
			if t, ok := a.Binding[v]; ok {
				parts = append(parts, fmt.Sprintf("?%s=%s", v, t))
			}
		}
		prov := ""
		if len(a.Used) > 0 {
			prov = fmt.Sprintf("  [via %d sameAs link(s)]", len(a.Used))
		}
		fmt.Printf("%3d. %s%s\n", i+1, strings.Join(parts, "  "), prov)
	}
	fmt.Printf("%d answer(s)\n", len(res.Answers))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsparql:", err)
	os.Exit(1)
}
