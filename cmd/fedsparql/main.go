// Command fedsparql runs federated SPARQL queries over N-Triples files,
// bridging entities through an owl:sameAs link file — the substrate ALEX
// assumes (paper §3.2). Each answer is printed with its link provenance:
// the sameAs links that produced it.
//
// Usage:
//
//	fedsparql -data dbpedia.nt -data nytimes.nt -links truth.nt \
//	    -query 'SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'
//
// With no -query, queries are read from stdin, one per line. With -trace,
// each query's execution span tree (per-pattern timings, source names,
// join cardinalities, sameAs rewrites) is printed to stderr, followed by
// a JSON metrics snapshot on exit.
//
// Remote endpoints (-remote) are queried under a fault-tolerance policy:
// -timeout bounds each source call, -retries retries transient failures
// with exponential backoff, and -partial-ok degrades gracefully — when an
// endpoint stays unavailable past its retry budget the query still
// answers, flagged with the skipped sources, instead of failing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alex/internal/endpoint"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/obs"
	"alex/internal/rdf"
	"alex/internal/store"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so tests can drive the
// whole command in-process. It returns the exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fedsparql", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var dataFiles, remotes multiFlag
	fs.Var(&dataFiles, "data", "N-Triples or Turtle file (repeatable)")
	fs.Var(&remotes, "remote", "remote SPARQL endpoint URL, e.g. http://host:8181/sparql (repeatable; see cmd/sparqld)")
	linksFile := fs.String("links", "", "owl:sameAs N-Triples link file")
	query := fs.String("query", "", "SPARQL query (default: read from stdin)")
	trace := fs.Bool("trace", false, "print each query's execution span tree and a final metrics snapshot to stderr")
	timeout := fs.Duration("timeout", 10*time.Second, "per-source-call timeout (0 disables)")
	retries := fs.Int("retries", 2, "retries per failed source call")
	partialOK := fs.Bool("partial-ok", false, "tolerate unavailable sources: answer with partial results instead of failing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if len(dataFiles) == 0 && len(remotes) == 0 {
		fmt.Fprintln(stderr, "fedsparql: at least one -data file or -remote endpoint is required")
		return 2
	}
	var reg *obs.Registry
	if *trace {
		reg = obs.NewRegistry()
		defer printMetrics(reg, stderr)
	}

	dict := rdf.NewDict()
	var stores []*store.Store
	for _, path := range dataFiles {
		st, err := loadStore(dict, path, reg)
		if err != nil {
			fmt.Fprintln(stderr, "fedsparql:", err)
			return 1
		}
		fmt.Fprintf(stderr, "loaded %s\n", st.Stats())
		stores = append(stores, st)
	}
	federation := fed.New(dict, stores...)
	for i, remoteURL := range remotes {
		name := fmt.Sprintf("remote%d", i+1)
		federation.AddSource(fed.RemoteSource(endpoint.NewClient(name, remoteURL, nil)))
		fmt.Fprintf(stderr, "added remote endpoint %s = %s\n", name, remoteURL)
	}
	if *linksFile != "" {
		links, err := loadLinks(dict, *linksFile)
		if err != nil {
			fmt.Fprintln(stderr, "fedsparql:", err)
			return 1
		}
		fmt.Fprintf(stderr, "loaded %d sameAs links\n", links.Len())
		federation.SetLinks(links)
	}

	res := fed.DefaultResilience()
	res.Timeout = *timeout
	res.MaxRetries = *retries
	res.PartialResults = *partialOK
	federation.SetResilience(res)

	if reg != nil {
		federation.SetObserver(reg)
	}

	if *query != "" {
		if err := runQuery(federation, *query, *trace, stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "fedsparql:", err)
			return 1
		}
		return 0
	}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" {
			continue
		}
		if err := runQuery(federation, q, *trace, stdout, stderr); err != nil {
			fmt.Fprintln(stderr, "fedsparql:", err)
		}
	}
	return 0
}

// printMetrics dumps the final metrics snapshot as indented JSON.
func printMetrics(reg *obs.Registry, stderr io.Writer) {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return
	}
	fmt.Fprintf(stderr, "metrics:\n%s\n", raw)
}

func loadStore(dict *rdf.Dict, path string, reg *obs.Registry) (*store.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	st := store.New(name, dict)
	if ext := strings.ToLower(filepath.Ext(path)); ext == ".ttl" || ext == ".turtle" {
		_, err = store.LoadTurtle(st, f, store.LoadOptions{Obs: reg})
	} else {
		_, err = store.LoadNTriples(st, f, store.LoadOptions{Obs: reg})
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

func loadLinks(dict *rdf.Dict, path string) (*linkset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	links := linkset.New()
	for _, t := range triples {
		if t.P.Value != rdf.OWLSameAs {
			continue
		}
		links.Add(linkset.Link{Left: dict.Intern(t.S), Right: dict.Intern(t.O)})
	}
	return links, nil
}

func runQuery(federation *fed.Federation, query string, trace bool, stdout, stderr io.Writer) error {
	var res *fed.Result
	var err error
	if trace {
		var tr *obs.Trace
		res, tr, err = federation.ExecuteTrace(query)
		if tr != nil {
			fmt.Fprintln(stderr, tr.String())
		}
	} else {
		res, err = federation.Execute(query)
	}
	if err != nil {
		return err
	}
	if res.Partial() {
		for _, sk := range res.Skipped {
			fmt.Fprintf(stderr, "warning: source %s skipped (%s); results may be incomplete\n", sk.Source, sk.Reason)
		}
	}
	if res.Triples != nil {
		w := rdf.NewWriter(stdout)
		for _, t := range res.Triples {
			if err := w.Write(t); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d triple(s)\n", len(res.Triples))
		return nil
	}
	for i, a := range res.Answers {
		var parts []string
		for _, v := range res.Vars {
			if t, ok := a.Binding[v]; ok {
				parts = append(parts, fmt.Sprintf("?%s=%s", v, t))
			}
		}
		prov := ""
		if len(a.Used) > 0 {
			prov = fmt.Sprintf("  [via %d sameAs link(s)]", len(a.Used))
		}
		fmt.Fprintf(stdout, "%3d. %s%s\n", i+1, strings.Join(parts, "  "), prov)
	}
	fmt.Fprintf(stdout, "%d answer(s)\n", len(res.Answers))
	return nil
}
