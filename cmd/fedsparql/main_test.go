package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alex/internal/endpoint"
	"alex/internal/rdf"
	"alex/internal/store"
)

// writeFixtures drops a tiny two-dataset federation plus a sameAs link
// file into dir and returns the three paths.
func writeFixtures(t *testing.T, dir string) (dbp, nyt, links string) {
	t.Helper()
	dbp = filepath.Join(dir, "dbpedia.nt")
	nyt = filepath.Join(dir, "nytimes.nt")
	links = filepath.Join(dir, "links.nt")
	write := func(path, content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(dbp, `<http://dbp/LeBron> <http://dbo/award> "NBA MVP 2013" .
`)
	write(nyt, `<http://nyt/article1> <http://nyo/about> <http://nyt/lebron_per> .
<http://nyt/article2> <http://nyo/about> <http://nyt/lebron_per> .
`)
	write(links, `<http://dbp/LeBron> <http://www.w3.org/2002/07/owl#sameAs> <http://nyt/lebron_per> .
`)
	return dbp, nyt, links
}

const joinQuery = `SELECT ?article WHERE { ?player <http://dbo/award> "NBA MVP 2013" . ?article <http://nyo/about> ?player . }`

func TestRunEndToEnd(t *testing.T) {
	dbp, nyt, links := writeFixtures(t, t.TempDir())
	var stdout, stderr strings.Builder
	code := run([]string{"-data", dbp, "-data", nyt, "-links", links, "-query", joinQuery},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "2 answer(s)") {
		t.Errorf("output missing answers:\n%s", out)
	}
	if !strings.Contains(out, "via 1 sameAs link(s)") {
		t.Errorf("output missing link provenance:\n%s", out)
	}
}

func TestRunQueriesFromStdin(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	var stdout, stderr strings.Builder
	code := run([]string{"-data", dbp},
		strings.NewReader("SELECT ?s WHERE { ?s ?p ?o }\n\n"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 answer(s)") {
		t.Errorf("stdin query produced:\n%s", stdout.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("no inputs: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "at least one -data") {
		t.Errorf("usage error missing:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{"-data", "/nonexistent.nt"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit = %d, want 1", code)
	}
}

func TestRunBadQueryFails(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	var stdout, stderr strings.Builder
	if code := run([]string{"-data", dbp, "-query", "NOT SPARQL"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("bad query: exit = %d, want 1", code)
	}
}

// TestRunRemoteEndpoint drives a query against an in-process sparqld-style
// endpoint through -remote.
func TestRunRemoteEndpoint(t *testing.T) {
	st := store.New("remote", rdf.NewDict())
	st.Add(rdf.Triple{S: rdf.NewIRI("http://r/s"), P: rdf.NewIRI("http://r/p"), O: rdf.NewString("v")})
	srv := httptest.NewServer(endpoint.NewHandler(st))
	defer srv.Close()

	var stdout, stderr strings.Builder
	code := run([]string{"-remote", srv.URL + "/sparql", "-query", "SELECT ?s WHERE { ?s <http://r/p> ?o }"},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 answer(s)") {
		t.Errorf("remote query produced:\n%s", stdout.String())
	}
}

// TestRunPartialOKWithDownRemote: with -partial-ok a dead remote endpoint
// degrades to a partial answer and a warning; without it the query fails.
func TestRunPartialOKWithDownRemote(t *testing.T) {
	dbp, _, _ := writeFixtures(t, t.TempDir())
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()

	base := []string{"-data", dbp, "-remote", dead.URL + "/sparql",
		"-retries", "0", "-timeout", "1s", "-query", "SELECT ?s WHERE { ?s ?p ?o }"}

	var stdout, stderr strings.Builder
	if code := run(base, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("down remote without -partial-ok: exit = %d, want 1", code)
	}

	stdout.Reset()
	stderr.Reset()
	code := run(append(base, "-partial-ok"), strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("down remote with -partial-ok: exit = %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "skipped") {
		t.Errorf("missing skipped-source warning:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 answer(s)") {
		t.Errorf("partial result missing local answer:\n%s", stdout.String())
	}
}
