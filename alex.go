// Package alex is the public API of the ALEX reproduction: a system that
// improves the quality of owl:sameAs links between RDF data sets by
// learning from user feedback on the answers to federated queries
// (El-Roby & Aboulnaga, "ALEX: Automatic Link Exploration in Linked Data").
//
// The typical workflow mirrors the paper's Figure 1:
//
//	ws := alex.NewWorkspace()
//	dbpedia, _ := ws.LoadDataset("dbpedia", file1)   // N-Triples
//	nytimes, _ := ws.LoadDataset("nytimes", file2)
//
//	sess := ws.NewSession(dbpedia, nytimes, alex.Options{})
//	sess.SeedFromPARIS()                              // automatic linking
//
//	res, _ := sess.Query(`SELECT ?article WHERE { ... }`) // federated
//	sess.Approve(res.Answers[0])                      // feedback on answers
//	sess.Reject(res.Answers[1])
//	sess.EndEpisode()                                 // policy improvement
//
//	links := sess.Links()                             // improved sameAs links
//
// Everything is implemented from scratch on the Go standard library: the
// RDF store and N-Triples parser (internal/rdf, internal/store), a SPARQL
// subset with a FedX-style federated executor that tracks per-answer link
// provenance (internal/sparql, internal/fed), the PARIS baseline linker
// (internal/paris), the feature space with θ-filtering and partitioning
// (internal/feature), and the Monte-Carlo reinforcement-learning engine
// itself (internal/rl, internal/core).
package alex

import (
	"context"
	"fmt"
	"io"
	"sort"

	"alex/internal/core"
	"alex/internal/fed"
	"alex/internal/linkset"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/reason"
	"alex/internal/store"
)

// Term is an RDF term (IRI, literal or blank node).
type Term = rdf.Term

// Triple is an RDF statement.
type Triple = rdf.Triple

// Convenience term constructors re-exported from the RDF core.
var (
	IRI        = rdf.NewIRI
	String     = rdf.NewString
	LangString = rdf.NewLangString
	Typed      = rdf.NewTyped
	Int        = rdf.NewInt
	Float      = rdf.NewFloat
	Date       = rdf.NewDate
)

// Workspace owns the term dictionary shared by a group of data sets that
// will be linked and queried together.
type Workspace struct {
	dict *rdf.Dict
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{dict: rdf.NewDict()}
}

// Dataset is one RDF data set in a workspace.
type Dataset struct {
	st *store.Store
}

// NewDataset creates an empty data set named name.
func (w *Workspace) NewDataset(name string) *Dataset {
	return &Dataset{st: store.New(name, w.dict)}
}

// LoadDataset reads N-Triples from r into a new data set. Large inputs are
// parsed on all available cores (see store.LoadNTriples); the result is
// identical to a serial load.
func (w *Workspace) LoadDataset(name string, r io.Reader) (*Dataset, error) {
	ds := w.NewDataset(name)
	if _, err := store.LoadNTriples(ds.st, r, store.LoadOptions{}); err != nil {
		return nil, fmt.Errorf("alex: loading %s: %w", name, err)
	}
	return ds, nil
}

// LoadDatasetTurtle reads Turtle from r into a new data set.
func (w *Workspace) LoadDatasetTurtle(name string, r io.Reader) (*Dataset, error) {
	ds := w.NewDataset(name)
	if _, err := store.LoadTurtle(ds.st, r, store.LoadOptions{}); err != nil {
		return nil, fmt.Errorf("alex: loading %s: %w", name, err)
	}
	return ds, nil
}

// Name returns the data-set name.
func (d *Dataset) Name() string { return d.st.Name() }

// Add inserts one triple.
func (d *Dataset) Add(t Triple) { d.st.Add(t) }

// Len returns the number of triples.
func (d *Dataset) Len() int { return d.st.Len() }

// Stats summarizes the data set.
func (d *Dataset) Stats() string { return d.st.Stats().String() }

// Link is one owl:sameAs candidate between an entity of the first data set
// and one of the second, materialized as IRIs.
type Link struct {
	Left, Right Term
}

// Options configures a session. The zero value uses the paper's defaults
// (step size 0.05, episode size 1000, ε = 0.1, θ = 0.3, blacklist and
// rollback enabled).
type Options struct {
	// StepSize is the exploration offset around an approved feature value.
	StepSize float64
	// EpisodeSize is the number of feedback items per learning episode.
	EpisodeSize int
	// Epsilon is the ε-greedy exploration rate.
	Epsilon float64
	// Partitions is the number of parallel search-space partitions.
	Partitions int
	// Seed makes runs reproducible.
	Seed int64
	// ParisThreshold is the minimum PARIS score for seed links (paper: 0.95).
	ParisThreshold float64
}

// Session links two data sets end-to-end: federated querying, feedback on
// answers, and ALEX's link exploration. It corresponds to the full system
// of the paper's Figure 1.
type Session struct {
	ws       *Workspace
	ds1, ds2 *Dataset
	engine   *core.Engine
	fed      *fed.Federation
	opt      Options

	pendingFeedback []feedbackItem
}

type feedbackItem struct {
	link     linkset.Link
	approved bool
}

// NewSession builds the linking session. The first data set should be the
// larger one (it is the partitioned side). Construction precomputes the
// feature space and may take time proportional to the candidate pair count.
func (w *Workspace) NewSession(ds1, ds2 *Dataset, opt Options) *Session {
	cfg := core.Defaults()
	if opt.StepSize != 0 {
		cfg.StepSize = opt.StepSize
	}
	if opt.EpisodeSize != 0 {
		cfg.EpisodeSize = opt.EpisodeSize
	}
	if opt.Epsilon != 0 {
		cfg.Epsilon = opt.Epsilon
	}
	if opt.Partitions != 0 {
		cfg.Partitions = opt.Partitions
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	engine := core.New(ds1.st, ds2.st, cfg)
	s := &Session{
		ws:     w,
		ds1:    ds1,
		ds2:    ds2,
		engine: engine,
		fed:    fed.New(w.dict, ds1.st, ds2.st),
		opt:    opt,
	}
	s.fed.SetLinks(engine.Candidates())
	return s
}

// SeedFromPARIS runs the PARIS automatic linker over the two data sets and
// installs every link scoring above the threshold (default 0.95) as the
// initial candidate set, as in the paper's evaluation setup.
func (s *Session) SeedFromPARIS() int {
	cfg := paris.DefaultConfig()
	if s.opt.ParisThreshold != 0 {
		cfg.Threshold = s.opt.ParisThreshold
	}
	scored := paris.Link(s.ds1.st, s.ds2.st, cfg)
	links := make([]linkset.Link, len(scored))
	for i, sc := range scored {
		links[i] = sc.Link
	}
	s.engine.SetInitialLinks(links)
	s.fed.SetLinks(s.engine.Candidates())
	return len(links)
}

// SeedLinks installs an explicit initial candidate link set (from any
// automatic linking algorithm, per the paper's design).
func (s *Session) SeedLinks(links []Link) int {
	ids := make([]linkset.Link, 0, len(links))
	for _, l := range links {
		left, ok1 := s.ws.dict.Lookup(l.Left)
		right, ok2 := s.ws.dict.Lookup(l.Right)
		if !ok1 || !ok2 {
			continue
		}
		ids = append(ids, linkset.Link{Left: left, Right: right})
	}
	s.engine.SetInitialLinks(ids)
	s.fed.SetLinks(s.engine.Candidates())
	return len(ids)
}

// Answer is one federated query answer with its variable bindings and the
// sameAs links used to produce it.
type Answer struct {
	Bindings map[string]Term
	links    []linkset.Link
}

// UsedLinks reports how many sameAs links produced this answer. Answers
// with zero used links came from a single data set and carry no feedback
// signal for ALEX.
func (a Answer) UsedLinks() int { return len(a.links) }

// QueryResult is a federated query result. Skipped is non-empty only when
// a Resilience policy with PartialResults is installed and a source was
// unavailable: the answers may then be incomplete.
type QueryResult struct {
	Vars    []string
	Answers []Answer
	Skipped []fed.SourceSkip
}

// Partial reports whether any source was skipped producing this result.
func (r *QueryResult) Partial() bool { return len(r.Skipped) > 0 }

// Resilience is the federation fault-tolerance configuration (timeouts,
// retries, circuit breakers, partial results); see fed.Resilience and
// DefaultResilience.
type Resilience = fed.Resilience

// DefaultResilience returns production-shaped fault-tolerance settings.
func DefaultResilience() Resilience { return fed.DefaultResilience() }

// SetResilience installs a fault-tolerance policy on the session's
// federation. Mostly relevant when remote sources are added; the default
// in-process session never fails.
func (s *Session) SetResilience(r Resilience) { s.fed.SetResilience(r) }

// Query runs a SPARQL SELECT query over both data sets, bridging entities
// through the current candidate links and recording per-answer provenance.
func (s *Session) Query(query string) (*QueryResult, error) {
	return s.QueryContext(context.Background(), query)
}

// QueryContext is Query with a context: cancellation and deadlines are
// propagated into every source call.
func (s *Session) QueryContext(ctx context.Context, query string) (*QueryResult, error) {
	res, err := s.fed.ExecuteContext(ctx, query)
	if err != nil {
		return nil, err
	}
	out := &QueryResult{Vars: res.Vars, Skipped: res.Skipped}
	for _, a := range res.Answers {
		ans := Answer{Bindings: map[string]Term{}, links: a.Used}
		for v, t := range a.Binding {
			ans.Bindings[v] = t
		}
		out.Answers = append(out.Answers, ans)
	}
	return out, nil
}

// Approve marks a query answer correct. ALEX interprets this as positive
// feedback on every link used to produce the answer.
func (s *Session) Approve(a Answer) {
	for _, l := range a.links {
		s.pendingFeedback = append(s.pendingFeedback, feedbackItem{link: l, approved: true})
	}
}

// Reject marks a query answer incorrect: negative feedback on its links.
func (s *Session) Reject(a Answer) {
	for _, l := range a.links {
		s.pendingFeedback = append(s.pendingFeedback, feedbackItem{link: l, approved: false})
	}
}

// EndEpisode feeds the collected feedback to the engine as one episode
// (policy evaluation + policy improvement), refreshes the federation's
// links, and reports how many candidate links changed. Only links the user
// actually judged reach the engine; answers without feedback trigger no
// action, exactly as in the paper (§4, "if no feedback is provided on an
// answer, this answer will simply not trigger an action").
func (s *Session) EndEpisode() (changed int) {
	items := make([]core.Feedback, len(s.pendingFeedback))
	for i, f := range s.pendingFeedback {
		items[i] = core.Feedback{Link: f.link, Approved: f.approved}
	}
	s.pendingFeedback = nil
	st := s.engine.ApplyEpisode(items)
	s.fed.SetLinks(s.engine.Candidates())
	return st.Changed
}

// RunSimulated drives the engine with a programmatic judge until
// convergence, for batch usage without interactive queries. The judge
// receives materialized links.
func (s *Session) RunSimulated(judge func(Link) bool, maxEpisodes int) int {
	episodes := 0
	for !s.engine.Converged() && episodes < maxEpisodes {
		s.engine.RunEpisode(func(l linkset.Link) bool {
			return judge(s.materialize(l))
		})
		episodes++
	}
	s.fed.SetLinks(s.engine.Candidates())
	return episodes
}

// Links returns the current candidate sameAs links, materialized.
func (s *Session) Links() []Link {
	ids := s.engine.Candidates().Links()
	out := make([]Link, len(ids))
	for i, l := range ids {
		out[i] = s.materialize(l)
	}
	return out
}

// Converged reports whether the engine has converged.
func (s *Session) Converged() bool { return s.engine.Converged() }

// SaveState checkpoints everything the session has learned — candidate
// links, blacklist, value estimates and policy — so a restarted process can
// resume with LoadState instead of relearning from scratch.
func (s *Session) SaveState(w io.Writer) error { return s.engine.SaveState(w) }

// LoadState restores a checkpoint written by SaveState. The session must
// have been built over the same data sets with the same partition count.
func (s *Session) LoadState(r io.Reader) error {
	if err := s.engine.LoadState(r); err != nil {
		return err
	}
	s.fed.SetLinks(s.engine.Candidates())
	return nil
}

// FeatureQuality re-exports the engine's explainability record: what one
// partition learned about a (predicate, predicate) feature in one
// similarity band.
type FeatureQuality = core.FeatureQuality

// LearnedFeatures reports what the session has learned about which
// attribute pairs identify equivalent entities, across all partitions,
// sorted by mean return. Only entries with at least minVisits supporting
// returns are included.
func (s *Session) LearnedFeatures(minVisits int) []FeatureQuality {
	var out []FeatureQuality
	for i := 0; i < s.engine.Partitions(); i++ {
		out = append(out, s.engine.FeatureReport(i, minVisits)...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Mean != out[b].Mean {
			return out[a].Mean > out[b].Mean
		}
		return out[a].Visits > out[b].Visits
	})
	return out
}

func (s *Session) materialize(l linkset.Link) Link {
	return Link{Left: s.ws.dict.Term(l.Left), Right: s.ws.dict.Term(l.Right)}
}

// Conflict reports one entity currently linked to several counterparts —
// a functional violation worth reviewing first, since owl:sameAs between
// deduplicated data sets should be one-to-one.
type Conflict struct {
	// Entity is the shared endpoint; Side is "left" or "right".
	Entity Term
	Side   string
	// Partners are the conflicting counterparts.
	Partners []Term
}

// Conflicts audits the current candidate links for functional violations.
func (s *Session) Conflicts() []Conflict {
	var out []Conflict
	for _, c := range linkset.Conflicts(s.engine.Candidates()) {
		conflict := Conflict{Entity: s.ws.dict.Term(c.Entity), Side: c.Side}
		for _, p := range c.Partners {
			conflict.Partners = append(conflict.Partners, s.ws.dict.Term(p))
		}
		out = append(out, conflict)
	}
	return out
}

// EquivalenceClasses composes the current links into full equivalence
// classes (symmetric-transitive closure): each class lists all entities
// ALEX currently believes denote one individual.
func (s *Session) EquivalenceClasses() [][]Term {
	closure := reason.NewSameAs(s.engine.Candidates())
	var out [][]Term
	for _, class := range closure.Classes() {
		terms := make([]Term, len(class))
		for i, id := range class {
			terms[i] = s.ws.dict.Term(id)
		}
		out = append(out, terms)
	}
	return out
}
