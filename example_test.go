package alex_test

import (
	"fmt"
	"strings"

	"alex"
)

// Example reproduces the paper's motivating scenario end-to-end: a
// federated query whose answer depends on an owl:sameAs link, feedback on
// the answer, and the resulting candidate links.
func Example() {
	ws := alex.NewWorkspace()

	dbpedia := ws.NewDataset("dbpedia")
	dbpedia.Add(alex.Triple{
		S: alex.IRI("http://db/LeBron_James"),
		P: alex.IRI("http://db/award"),
		O: alex.String("NBA MVP 2013"),
	})

	nytimes := ws.NewDataset("nytimes")
	nytimes.Add(alex.Triple{
		S: alex.IRI("http://nyt/article1"),
		P: alex.IRI("http://nyt/about"),
		O: alex.IRI("http://nyt/lebron_per"),
	})

	sess := ws.NewSession(dbpedia, nytimes, alex.Options{Partitions: 1, Seed: 1})
	sess.SeedLinks([]alex.Link{{
		Left:  alex.IRI("http://db/LeBron_James"),
		Right: alex.IRI("http://nyt/lebron_per"),
	}})

	res, err := sess.Query(`SELECT ?article WHERE {
		?p <http://db/award> "NBA MVP 2013" .
		?article <http://nyt/about> ?p .
	}`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("answers: %d (via %d link)\n", len(res.Answers), res.Answers[0].UsedLinks())

	sess.Approve(res.Answers[0])
	sess.EndEpisode()
	for _, l := range sess.Links() {
		fmt.Printf("%s owl:sameAs %s\n", l.Left.Value, l.Right.Value)
	}
	// Output:
	// answers: 1 (via 1 link)
	// http://db/LeBron_James owl:sameAs http://nyt/lebron_per
}

// ExampleWorkspace_LoadDataset shows loading N-Triples data from any
// io.Reader.
func ExampleWorkspace_LoadDataset() {
	ws := alex.NewWorkspace()
	ds, err := ws.LoadDataset("demo", strings.NewReader(
		`<http://x/s> <http://x/p> "hello" .`))
	if err != nil {
		panic(err)
	}
	fmt.Println(ds.Stats())
	// Output: demo: 1 triples, 1 subjects, 1 predicates
}
