# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: build test race bench fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/fed/... ./internal/obs/... ./internal/store/...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

check: build vet test race
