# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

# The benchmarks pinned by the CI regression gate: bulk loading, dictionary
# interning, exploration (feature-space range scans and engine episodes),
# the single-store slot engine (A/B vs the legacy evaluator, planned vs
# written join order), the federated processor (join reorderer plus an
# end-to-end cross-source join), the serving layer (repeat-query
# cold/hit pair whose ratio is the cache win, and the saturated-endpoint
# latency), durable recovery (snapshot reload vs the re-parse it
# replaces — the pair whose ratio README's durability section quotes)
# and streaming maintenance (the Space rebuild/upsert pair whose ratio is
# the incremental-delta win README's streaming section quotes, plus the
# live POST /feedback round trip).
# Keep this list in sync with the "Performance" section of README.md.
BENCH_GATE_RE   = ^(BenchmarkLoadNTriples|BenchmarkLoadIncremental|BenchmarkStoreRecover|BenchmarkDictIntern(Parallel)?|BenchmarkFeatureExplore|BenchmarkEngineEpisode|BenchmarkSpaceRebuild|BenchmarkSpaceUpsert|BenchmarkEvalSlotRows|BenchmarkEvalPlanOrder|BenchmarkFedJoinReorder|BenchmarkFedQueryEndToEnd|BenchmarkEndpointRepeatQuery(Cold|Hit)|BenchmarkEndpointSaturation|BenchmarkEndpointFeedback)$$
BENCH_GATE_PKGS = .,./internal/store,./internal/rdf,./internal/endpoint
BENCH_COUNT    ?= 5
# Time-based so sub-millisecond benchmarks average many iterations (one
# 1x iteration of a microsecond benchmark is mostly timer noise) while the
# ~100ms loader benchmarks still run just once per sample.
BENCH_TIME     ?= 100ms

# Traffic-simulator knobs (cmd/alexsim): sim-smoke is the per-PR gate,
# sim-soak the nightly long run (.github/workflows/soak.yml).
SIM         = $(GO) run ./cmd/alexsim
SIM_ROUNDS ?= 300
SOAK_ROUNDS ?= 2000
SOAK_SEED  ?= 1

.PHONY: build test test-short race bench bench-json bench-gate fuzz cover fmt vet lint sim-smoke sim-soak check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/sparql/... ./internal/fed/... ./internal/endpoint/... ./internal/core/... ./internal/obs/... ./internal/store/... ./internal/rdf/... ./internal/feature/... ./internal/experiment/...

fuzz:
	$(GO) test ./internal/rdf/    -run '^$$' -fuzz '^FuzzNTriples$$' -fuzztime 10s
	$(GO) test ./internal/rdf/    -run '^$$' -fuzz '^FuzzTurtle$$'   -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzParse$$'    -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzNormalizeQuery$$' -fuzztime 10s
	$(GO) test ./internal/store/  -run '^$$' -fuzz '^FuzzReadSnapshot$$'  -fuzztime 10s

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the pinned gate suite and write BENCH_<LABEL>.json for committing
# alongside a PR (e.g. `make bench-json LABEL=pr4`).
bench-json:
ifndef LABEL
	$(error usage: make bench-json LABEL=<name>)
endif
	$(GO) run ./cmd/alexbench run -label $(LABEL) -bench '$(BENCH_GATE_RE)' -pkgs '$(BENCH_GATE_PKGS)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME)

# The CI regression gate: benchmark the working tree and compare against
# the committed baseline, failing on >10% mean slowdown beyond noise.
bench-gate:
	$(GO) run ./cmd/alexbench run -label gate -bench '$(BENCH_GATE_RE)' -pkgs '$(BENCH_GATE_PKGS)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) -o BENCH_gate.json
	$(GO) run ./cmd/alexbench compare -old BENCH_baseline.json -new BENCH_gate.json -threshold 0.10

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# The repo's own static-analysis suite (internal/lint, cmd/alexvet).
lint:
	$(GO) run ./cmd/alexvet ./...

# The traffic-simulator smoke gate: every run checks the live-world
# invariants (exit 1 on violation), and the op logs must be byte-identical
# across worker counts (seed 42), across repeat runs (seed 7), and with
# the serving caches + admission controller on vs off (seed 42) — caches
# must be answer- and log-invisible. Each run covers a scheduled NYTimes
# outage window with breaker recovery asserted. The durable pair runs DS1
# on a snapshot+WAL data directory with mid-run kill-and-recover
# (crash_restart) ops: those logs must be byte-identical across worker
# counts AND fsync policies — durability must never leak into answers.
# The streaming pair enables live store growth + POST /feedback ingestion
# (live_upsert/feedback_http ops): those logs too must be byte-identical
# across worker counts — stream batching must never reorder results.
sim-smoke:
	$(SIM) -seed 42 -rounds $(SIM_ROUNDS) -workers 4 -quiet -oplog simlog_42_w4.log
	$(SIM) -seed 42 -rounds $(SIM_ROUNDS) -workers 1 -quiet -oplog simlog_42_w1.log
	cmp simlog_42_w4.log simlog_42_w1.log
	$(SIM) -seed 42 -rounds $(SIM_ROUNDS) -workers 4 -cache -quiet -oplog simlog_42_cache.log
	cmp simlog_42_w4.log simlog_42_cache.log
	$(SIM) -seed 7 -rounds $(SIM_ROUNDS) -quiet -oplog simlog_7_a.log
	$(SIM) -seed 7 -rounds $(SIM_ROUNDS) -quiet -oplog simlog_7_b.log
	cmp simlog_7_a.log simlog_7_b.log
	$(SIM) -seed 42 -rounds $(SIM_ROUNDS) -workers 4 -data-dir simdur_w4 -quiet -oplog simlog_42_d4.log
	$(SIM) -seed 42 -rounds $(SIM_ROUNDS) -workers 1 -data-dir simdur_w1 -wal-fsync off -quiet -oplog simlog_42_d1.log
	cmp simlog_42_d4.log simlog_42_d1.log
	$(SIM) -seed 58 -rounds $(SIM_ROUNDS) -workers 4 -stream -quiet -oplog simlog_58_s4.log
	$(SIM) -seed 58 -rounds $(SIM_ROUNDS) -workers 1 -stream -quiet -oplog simlog_58_s1.log
	cmp simlog_58_s4.log simlog_58_s1.log
	rm -rf simdur_w4 simdur_w1
	rm -f simlog_42_w4.log simlog_42_w1.log simlog_42_cache.log simlog_7_a.log simlog_7_b.log simlog_42_d4.log simlog_42_d1.log simlog_58_s4.log simlog_58_s1.log

# The nightly soak: a longer, larger-scale run with the default mid-run
# outage window, writing the JSON report (alexbench-compatible), a
# Markdown summary for the CI step summary, and the full op log. The soak
# runs DS1 durably so crash_restart recovery is exercised at scale.
sim-soak:
	$(SIM) -seed $(SOAK_SEED) -rounds $(SOAK_ROUNDS) -ops-per-round 10 -scale 0.5 \
	    -data-dir SIM_soak_data \
	    -report SIM_soak.json -summary SIM_soak.md -oplog SIM_soak.log -quiet

check: build vet lint test race sim-smoke
