# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: build test test-short race bench fuzz cover fmt vet lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/fed/... ./internal/endpoint/... ./internal/core/... ./internal/obs/... ./internal/store/... ./internal/experiment/...

fuzz:
	$(GO) test ./internal/rdf/    -run '^$$' -fuzz '^FuzzNTriples$$' -fuzztime 10s
	$(GO) test ./internal/rdf/    -run '^$$' -fuzz '^FuzzTurtle$$'   -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzParse$$'    -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime 10s

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# The repo's own static-analysis suite (internal/lint, cmd/alexvet).
lint:
	$(GO) run ./cmd/alexvet ./...

check: build vet lint test race
