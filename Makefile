# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

# The benchmarks pinned by the CI regression gate: bulk loading, dictionary
# interning, exploration (feature-space range scans and engine episodes),
# the single-store slot engine (A/B vs the legacy evaluator, planned vs
# written join order) and the federated processor (join reorderer plus an
# end-to-end cross-source join). Keep this list in sync with the
# "Performance" section of README.md.
BENCH_GATE_RE   = ^(BenchmarkLoadNTriples|BenchmarkLoadIncremental|BenchmarkDictIntern(Parallel)?|BenchmarkFeatureExplore|BenchmarkEngineEpisode|BenchmarkEvalSlotRows|BenchmarkEvalPlanOrder|BenchmarkFedJoinReorder|BenchmarkFedQueryEndToEnd)$$
BENCH_GATE_PKGS = .,./internal/store,./internal/rdf
BENCH_COUNT    ?= 5
# Time-based so sub-millisecond benchmarks average many iterations (one
# 1x iteration of a microsecond benchmark is mostly timer noise) while the
# ~100ms loader benchmarks still run just once per sample.
BENCH_TIME     ?= 100ms

.PHONY: build test test-short race bench bench-json bench-gate fuzz cover fmt vet lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/sparql/... ./internal/fed/... ./internal/endpoint/... ./internal/core/... ./internal/obs/... ./internal/store/... ./internal/rdf/... ./internal/feature/... ./internal/experiment/...

fuzz:
	$(GO) test ./internal/rdf/    -run '^$$' -fuzz '^FuzzNTriples$$' -fuzztime 10s
	$(GO) test ./internal/rdf/    -run '^$$' -fuzz '^FuzzTurtle$$'   -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzParse$$'    -fuzztime 10s
	$(GO) test ./internal/sparql/ -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime 10s

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the pinned gate suite and write BENCH_<LABEL>.json for committing
# alongside a PR (e.g. `make bench-json LABEL=pr4`).
bench-json:
ifndef LABEL
	$(error usage: make bench-json LABEL=<name>)
endif
	$(GO) run ./cmd/alexbench run -label $(LABEL) -bench '$(BENCH_GATE_RE)' -pkgs '$(BENCH_GATE_PKGS)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME)

# The CI regression gate: benchmark the working tree and compare against
# the committed baseline, failing on >10% mean slowdown beyond noise.
bench-gate:
	$(GO) run ./cmd/alexbench run -label gate -bench '$(BENCH_GATE_RE)' -pkgs '$(BENCH_GATE_PKGS)' -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) -o BENCH_gate.json
	$(GO) run ./cmd/alexbench compare -old BENCH_baseline.json -new BENCH_gate.json -threshold 0.10

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# The repo's own static-analysis suite (internal/lint, cmd/alexvet).
lint:
	$(GO) run ./cmd/alexvet ./...

check: build vet lint test race
